"""The correctness contract of the parallel substrate: a decomposed run
reproduces the monolithic run to machine precision, particles migrate
between boxes correctly, and communication/LB accounting is populated."""

import numpy as np
import pytest

from repro.analysis.commcheck import check_comm
from repro.constants import m_e, plasma_wavelength, q_e
from repro.core.simulation import Simulation
from repro.grid.yee import YeeGrid
from repro.parallel.box import chop_domain
from repro.parallel.distributed import DistributedSimulation
from repro.parallel.redistribute import (
    build_box_lookup,
    redistribute_particles,
    wrap_positions_periodic,
)
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def test_build_box_lookup_tiles():
    boxes = chop_domain((8, 8), 4)
    lookup = build_box_lookup(boxes, (8, 8))
    assert lookup.shape == (8, 8)
    assert set(np.unique(lookup)) == {0, 1, 2, 3}


def test_build_box_lookup_gap_raises():
    from repro.exceptions import DecompositionError
    from repro.parallel.box import Box

    with pytest.raises(DecompositionError):
        build_box_lookup([Box((0, 0), (4, 8))], (8, 8))


def test_wrap_positions_periodic():
    pos = np.array([[-0.5, 3.0], [8.5, -1.0]])
    wrap_positions_periodic(pos, (0.0, 0.0), (8.0, 8.0), axes=(0, 1))
    np.testing.assert_allclose(pos, [[7.5, 3.0], [0.5, 7.0]])


def test_redistribute_moves_to_owner():
    boxes = chop_domain((8, 8), 4)
    lookup = build_box_lookup(boxes, (8, 8))
    per_box = [Species("e", ndim=2) for _ in boxes]
    # a particle sitting in box 0's container but physically in box 3
    per_box[0].add_particles([[6.0, 6.0]])
    moved = redistribute_particles(
        per_box, boxes, lookup, (0.0, 0.0), (1.0, 1.0)
    )
    assert moved == 1
    assert per_box[0].n == 0
    owner = lookup[6, 6]
    assert per_box[owner].n == 1


def langmuir_setup_monolithic(n0, n_cells, length, ppc, u0):
    g = YeeGrid((n_cells,) * 2, (0.0, 0.0), (length, length), guards=4)
    sim = Simulation(g, cfl=0.9, shape_order=2, smoothing_passes=0)
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    sim.add_species(e, profile=UniformProfile(n0), ppc=ppc)
    k = 2 * np.pi / length
    e.momenta[:, 0] = u0 * np.sin(k * e.positions[:, 0])
    return sim, e


def test_distributed_matches_monolithic():
    """THE substrate test: 2x2 boxes over 4 ranks == single grid."""
    n0 = 1e24
    length = plasma_wavelength(n0)
    n_cells = 16
    ppc = (2, 2)
    u0 = 1e-3

    mono, e_mono = langmuir_setup_monolithic(n0, n_cells, length, ppc, u0)

    dist = DistributedSimulation(
        (n_cells,) * 2,
        (0.0, 0.0),
        (length, length),
        n_ranks=4,
        max_grid_size=8,
        cfl=0.9,
        shape_order=2,
        smoothing_passes=0,
    )
    e_proto = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    k = 2 * np.pi / length

    def perturb(sp):
        sp.momenta[:, 0] = u0 * np.sin(k * sp.positions[:, 0])

    dist.add_species(e_proto, profile=UniformProfile(n0), ppc=ppc,
                     momentum_init=perturb)

    assert dist.total_particles() == e_mono.n
    assert dist.dt == pytest.approx(mono.dt)

    steps = 40
    mono.step(steps)
    dist.step(steps)

    ex_mono = mono.grid.interior_view("Ex")
    ex_dist = dist.global_field_view("Ex")
    scale = np.max(np.abs(ex_mono))
    assert scale > 0
    np.testing.assert_allclose(ex_dist, ex_mono, atol=1e-9 * scale)
    # particle populations agree
    assert dist.total_particles() == e_mono.n
    merged = dist.species["electrons"].gather_all()
    assert merged.kinetic_energy() == pytest.approx(
        e_mono.kinetic_energy(), rel=1e-9
    )
    # the whole run's message traffic obeys the protocol
    check_comm(dist.comm).raise_if_failed()


def test_distributed_comm_accounting_populates():
    n0 = 1e24
    length = plasma_wavelength(n0)
    dist = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length), n_ranks=4, max_grid_size=8,
    )
    e = Species("e", ndim=2)
    dist.add_species(e, profile=UniformProfile(n0), ppc=1)
    dist.step(3)
    assert dist.comm.total_bytes() > 0
    assert dist.comm.total_messages() > 0
    # halo traffic between distinct ranks only
    for (src, dst), nbytes in dist.comm.pair_bytes.items():
        assert src != dst
    # and the recorded event log passes the protocol checker
    report = check_comm(dist.comm)
    assert report.ok, report.format()
    assert report.n_events > 0


def test_dynamic_lb_triggers_on_imbalance():
    """A particle distribution concentrated in one corner triggers the
    dynamic load balancer, which reduces the measured-cost imbalance."""
    n0 = 1e24
    length = plasma_wavelength(n0)
    dist = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length),
        n_ranks=4, max_grid_size=4,  # 16 boxes over 4 ranks
        dynamic_lb=True, lb_interval=3, lb_threshold=1.05,
        strategy="sfc",
    )
    e = Species("e", ndim=2)
    # plasma only in one quadrant: heavily imbalanced
    dist.add_species(e, profile=UniformProfile(n0), ppc=4)
    for i, sp in enumerate(dist.species["e"].per_box):
        if dist.boxes[i].lo[0] >= 8 or dist.boxes[i].lo[1] >= 8:
            sp.remove(np.ones(sp.n, dtype=bool))
    dist.step(6)
    assert len(dist.lb_events) >= 1
    costs = dist.cost_model.measured(range(len(dist.boxes)))
    assert dist.dm.imbalance(costs) < 2.0


# -- halo accounting, dead-rank LB, and migration payload regressions --------


def test_halo_send_log_reconciles_with_pair_bytes():
    """Acceptance: every halo send carries a real payload, at most one
    aggregated message flows per (src, dst) per phase, and the event log
    agrees with both the simulation counters and SimComm.pair_bytes."""
    from collections import Counter

    n0 = 1e24
    length = plasma_wavelength(n0)
    dist = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length), n_ranks=4, max_grid_size=8,
    )
    e = Species("e", ndim=2)
    dist.add_species(e, profile=UniformProfile(n0), ppc=2)
    dist.step(2)  # warm up past initialization
    dist.comm.clear_log()
    pair_before = dict(dist.comm.pair_bytes)
    bytes_before = dist.halo_payload_bytes
    msgs_before = dist.halo_messages

    dist.step(1)

    halo_sends = [
        ev for ev in dist.comm.log
        if ev.kind == "send" and ev.tag.startswith("halo")
    ]
    assert halo_sends and all(ev.nbytes > 0 for ev in halo_sends)
    counts = Counter((ev.src, ev.dst, ev.tag) for ev in halo_sends)
    assert max(counts.values()) == 1  # one aggregated message per pair+phase
    # log == simulation counters == communicator pair accounting
    logged = dist.comm.pair_bytes_for_tag("halo")
    halo_logged = sum(ev.nbytes for ev in halo_sends)
    assert sum(logged.values()) == halo_logged
    assert halo_logged == dist.halo_payload_bytes - bytes_before
    assert len(halo_sends) == dist.halo_messages - msgs_before
    # and every byte pair_bytes advanced by this step is in the event log
    pair_delta = sum(
        n - pair_before.get(p, 0) for p, n in dist.comm.pair_bytes.items()
    )
    all_send_bytes = sum(
        ev.nbytes for ev in dist.comm.log if ev.kind == "send"
    )
    assert pair_delta == all_send_bytes


def test_lb_never_resurrects_dead_rank():
    """Regression: after a rank failure the dynamic load balancer must
    keep the dead rank out of every subsequent assignment."""
    from repro.resilience import FaultSchedule, FaultSpec, RecoveryPolicy

    schedule = FaultSchedule([FaultSpec(kind="rank_failure", step=2, rank=1)])
    n0 = 1e24
    length = plasma_wavelength(n0)
    dist = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length),
        n_ranks=4, max_grid_size=4,  # 16 boxes over 4 ranks
        dynamic_lb=True, lb_interval=2, lb_threshold=1.01,
        fault_schedule=schedule, recovery=RecoveryPolicy(),
        checkpoint_interval=1,
    )
    e = Species("e", ndim=2)
    dist.add_species(e, profile=UniformProfile(n0), ppc=4)
    for i, sp in enumerate(dist.species["e"].per_box):
        if dist.boxes[i].lo[0] >= 8 or dist.boxes[i].lo[1] >= 8:
            sp.remove(np.ones(sp.n, dtype=bool))
    dist.step(8)
    assert dist.dead_ranks == {1}
    assert len(dist.lb_events) >= 1  # the balancer did run after the death
    assert 1 not in set(dist.dm.assignment)


def test_lb_migration_ships_real_payloads():
    """Regression: a rebalance moves the boxes' fields and particles as
    real messages; lb_moved_bytes equals the tagged wire traffic."""
    n0 = 1e24
    length = plasma_wavelength(n0)
    dist = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length),
        n_ranks=4, max_grid_size=4,
        dynamic_lb=True, lb_interval=3, lb_threshold=1.05,
        strategy="sfc",
    )
    e = Species("e", ndim=2)
    dist.add_species(e, profile=UniformProfile(n0), ppc=4)
    for i, sp in enumerate(dist.species["e"].per_box):
        if dist.boxes[i].lo[0] >= 8 or dist.boxes[i].lo[1] >= 8:
            sp.remove(np.ones(sp.n, dtype=bool))
    dist.step(6)
    assert any(m > 0 for m in dist.lb_events)
    assert dist.lb_moved_bytes > 0
    migrate_bytes = dist.comm.pair_bytes_for_tag("lb:migrate")
    assert sum(migrate_bytes.values()) == dist.lb_moved_bytes
    assert all(src != dst for src, dst in migrate_bytes)
    check_comm(dist.comm).raise_if_failed()


# -- cross-transport parity (see tests/conftest.py) --------------------------

from tests.conftest import (  # noqa: E402
    assert_runs_equal,
    make_langmuir_build,
)
from repro.parallel.transport import pair_bytes_for_tag  # noqa: E402


def test_redistribute_cross_transport(transport_runner, golden_langmuir):
    """Particle redistribution is transport-invariant: cross-rank movers
    travel as real messages on the multiprocessing backend and every box
    ends with bit-identical particles; the 'particles' wire traffic in
    the replayable log matches the loopback bytes exactly."""
    want = golden_langmuir(n_steps=8, uy=0.3)
    got = transport_runner(make_langmuir_build(uy=0.3), 8)
    assert_runs_equal(got, want)
    got_pairs = pair_bytes_for_tag(got.merged_log, "particles")
    want_pairs = pair_bytes_for_tag(want.merged_log, "particles")
    assert got_pairs == want_pairs
    # the protocol really moved particle payloads between ranks
    assert sum(got_pairs.values()) > 0
