"""Tests and property tests for the coarse<->fine transfer operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.interpolation import (
    prolong,
    region_sample_counts,
    restrict,
)


def test_region_sample_counts():
    assert region_sample_counts((8, 4), (0, 0)) == (9, 5)
    assert region_sample_counts((8, 4), (1, 0)) == (8, 5)


def test_prolong_constant_is_exact():
    arr = np.full((5, 5), 7.0)
    out = prolong(arr, 2, (0, 0), (9, 9))
    np.testing.assert_allclose(out, 7.0)


def test_prolong_linear_is_exact_nodal():
    x = np.arange(9.0)
    arr = 2.0 * x + 1.0
    out = prolong(arr, 2, (0,), (17,))
    fine_x = np.arange(17.0) / 2.0
    np.testing.assert_allclose(out, 2.0 * fine_x + 1.0, rtol=1e-12)


def test_prolong_linear_is_exact_staggered_interior():
    # staggered samples at (j + 0.5); fine at (k + 0.5)/2
    x = np.arange(8.0) + 0.5
    arr = 3.0 * x
    out = prolong(arr, 2, (1,), (16,))
    fine_x = (np.arange(16.0) + 0.5) / 2.0
    # edges extrapolate; interior must be exact
    np.testing.assert_allclose(out[1:-1], 3.0 * fine_x[1:-1], rtol=1e-12)


def test_prolong_matches_coarse_at_coincident_nodes():
    rng = np.random.default_rng(1)
    arr = rng.normal(size=(6, 6))
    out = prolong(arr, 2, (0, 0), (11, 11))
    np.testing.assert_allclose(out[::2, ::2], arr, rtol=1e-12)


def test_restrict_constant_is_exact():
    arr = np.full((17, 16), 4.0)
    out = restrict(arr, 2, (0, 1), (9, 8))
    np.testing.assert_allclose(out, 4.0)


def test_restrict_linear_nodal_interior_exact():
    x = np.arange(17.0) / 2.0
    arr = 5.0 * x
    out = restrict(arr, 2, (0,), (9,))
    np.testing.assert_allclose(out[1:-1], 5.0 * np.arange(1.0, 8.0), rtol=1e-12)


def test_restrict_staggered_box_average():
    arr = np.arange(8.0)
    out = restrict(arr, 2, (1,), (4,))
    np.testing.assert_allclose(out, [0.5, 2.5, 4.5, 6.5])


def test_restrict_then_prolong_smooth_roundtrip():
    x = np.linspace(0, 2 * np.pi, 33)
    fine = np.sin(x)
    coarse = restrict(fine, 2, (0,), (17,))
    back = prolong(coarse, 2, (0,), (33,))
    assert np.max(np.abs(back[2:-2] - fine[2:-2])) < 0.05


@settings(max_examples=30, deadline=None)
@given(
    ratio=st.sampled_from([2, 4]),
    stagger=st.sampled_from([0, 1]),
    scale=st.floats(-5, 5, allow_nan=False),
    offset=st.floats(-3, 3, allow_nan=False),
)
def test_prolong_preserves_affine_functions(ratio, stagger, scale, offset):
    """Linear interpolation reproduces any affine field exactly (interior)."""
    n_c = 12
    xc = np.arange(n_c, dtype=float) + 0.5 * stagger
    arr = scale * xc + offset
    n_f = (n_c - 1) * ratio if stagger == 0 else n_c * ratio
    out = prolong(arr, ratio, (stagger,), (n_f,))
    xf = (np.arange(n_f) + 0.5 * stagger) / ratio
    expected = scale * xf + offset
    np.testing.assert_allclose(out[ratio:-ratio], expected[ratio:-ratio], atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    stagger=st.sampled_from([0, 1]),
    const=st.floats(-10, 10, allow_nan=False),
)
def test_restrict_preserves_constants(stagger, const):
    arr = np.full(24, const)
    out = restrict(arr, 2, (stagger,), (12 - stagger,))
    np.testing.assert_allclose(out, const, atol=1e-12)
