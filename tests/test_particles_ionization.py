"""Tests for ADK field ionization."""

import numpy as np
import pytest

from repro.constants import a0_to_field, fs, q_e, um
from repro.exceptions import ConfigurationError
from repro.grid.yee import YeeGrid
from repro.particles.ionization import (
    ADKIonization,
    IONIZATION_ENERGIES,
    adk_rate,
    barrier_suppression_field,
)
from repro.particles.species import Species


def test_rate_monotone_in_field():
    fields = np.array([1e10, 5e10, 1e11, 3e11])
    rates = adk_rate(fields, 13.6, 1)
    assert np.all(np.diff(rates) > 0)


def test_rate_decreases_with_binding_energy():
    e = np.array([2e11])
    assert adk_rate(e, 13.6, 1)[0] > adk_rate(e, 24.6, 1)[0]


def test_hydrogen_bsi_threshold():
    """The classical barrier-suppression field of hydrogen is ~3.2e10 V/m
    (the textbook 1.4e14 W/cm^2); the ADK rate there reaches ~1/fs."""
    e_bsi = barrier_suppression_field(13.598, 1)
    assert e_bsi == pytest.approx(3.21e10, rel=0.02)
    rate = adk_rate(np.array([e_bsi]), 13.598, 1)[0]
    assert 1e13 < rate < 1e17  # ionizes within femtoseconds


def test_negligible_rate_below_threshold():
    rate = adk_rate(np.array([1e9]), 13.598, 1)[0]  # ~100x below BSI
    assert rate * 1.0 < 1e-30  # nothing happens in a second


def make_ladder(element="He", n_atoms=200, ndim=2, seed=2):
    electrons = Species("electrons", ndim=ndim)
    ladder = ADKIonization(element, electrons, ndim=ndim, seed=seed)
    rng = np.random.default_rng(seed)
    ladder.add_neutrals(
        rng.uniform(2.0, 6.0, size=(n_atoms, ndim)), np.full(n_atoms, 1e6)
    )
    return ladder, electrons


def test_ladder_construction():
    ladder, _ = make_ladder("He")
    assert len(ladder.states) == 3
    assert ladder.states[0].charge == 0.0
    assert ladder.states[2].charge == pytest.approx(2 * q_e)
    with pytest.raises(ConfigurationError):
        ADKIonization("Xx", Species("e", ndim=1), ndim=1)
    with pytest.raises(ConfigurationError):
        ADKIonization("He", Species("e", ndim=1), ndim=1, max_state=5)


def test_strong_field_ionizes_and_conserves_charge():
    ladder, electrons = make_ladder("He")
    g = YeeGrid((8, 8), (0.0, 0.0), (8.0, 8.0), guards=3)
    g.fields["Ey"][...] = 5e11  # far above both He thresholds
    q0 = ladder.total_charge()
    atoms0 = ladder.total_atoms()
    for _ in range(40):
        ladder.apply(g, dt=1e-16)
    assert ladder.mean_charge_state() > 1.5  # mostly fully stripped
    assert electrons.n > 0
    assert ladder.total_charge() == pytest.approx(q0, abs=1e-25)
    assert ladder.total_atoms() == pytest.approx(atoms0)
    # electrons are born where their parents sat
    assert electrons.positions[:, 0].min() >= 2.0
    assert electrons.positions[:, 0].max() < 6.0


def test_weak_field_does_nothing():
    ladder, electrons = make_ladder("H")
    g = YeeGrid((8, 8), (0.0, 0.0), (8.0, 8.0), guards=3)
    g.fields["Ey"][...] = 1e9
    events = sum(ladder.apply(g, dt=1e-15) for _ in range(20))
    assert events == 0
    assert electrons.n == 0
    assert ladder.mean_charge_state() == 0.0


def test_inner_shell_survives_moderate_field():
    """Nitrogen's K-shell (552 eV) survives fields that strip the outer
    shells — the physics behind ionization injection."""
    ladder, electrons = make_ladder("N")
    g = YeeGrid((8, 8), (0.0, 0.0), (8.0, 8.0), guards=3)
    g.fields["Ey"][...] = 1.0e12  # strips the L shell, not the K shell
    for _ in range(60):
        ladder.apply(g, dt=1e-16)
    mean = ladder.mean_charge_state()
    assert 4.0 < mean <= 5.05  # pinned at the N5+ K-shell edge
    assert ladder.states[6].n == 0  # no K-shell ionization
    assert ladder.states[7 if len(ladder.states) > 7 else -1].n == 0


def test_attach_to_simulation_with_laser():
    """End to end: a focused laser ionizes hydrogen gas only where its
    field exceeds the threshold."""
    from repro.core.simulation import Simulation
    from repro.laser.antenna import LaserAntenna
    from repro.laser.profiles import GaussianLaser

    g = YeeGrid((128, 32), (0.0, -8 * um), (32 * um, 8 * um), guards=4)
    sim = Simulation(g, boundaries="damped", smoothing_passes=1)
    laser = GaussianLaser(0.8 * um, a0=0.05, waist=3 * um, duration=6 * fs,
                          t_peak=12 * fs)
    # a0 = 0.05 -> E ~ 2e11 V/m: far above the hydrogen BSI field on axis,
    # far below it in the wings
    sim.add_laser(LaserAntenna(laser, position=2 * um))
    electrons = Species("electrons", ndim=2)
    ladder = ADKIonization("H", electrons, ndim=2, seed=5)
    rng = np.random.default_rng(6)
    n_atoms = 600
    pos = np.column_stack([
        rng.uniform(8 * um, 28 * um, n_atoms),
        rng.uniform(-7 * um, 7 * um, n_atoms),
    ])
    ladder.add_neutrals(pos, np.full(n_atoms, 1e3))
    ladder.attach(sim)
    from repro.constants import c

    sim.run_until(laser.t_peak + 24 * um / c)
    assert electrons.n > 0
    # ionization is confined near the axis where the field is strong
    assert np.abs(electrons.positions[:, 1]).max() < 6 * um
    assert ladder.total_charge() == pytest.approx(0.0, abs=1e-22)
