"""Compiled kernel tier: python-twin equivalence against the numpy
kernels, native-backend validation when a backend is live, the
environment/backend selection logic, graceful registry fallback when no
backend is usable, atomicity of batch registration, wide-window and
guard-shortage handling, and the per-tier dispatch counters."""

import numpy as np
import pytest

from repro.core.simulation import Simulation
from repro.exceptions import ConfigurationError
from repro.grid.yee import YeeGrid
from repro.observability import attach_observability
from repro.particles import compiled
from repro.particles import kernels
from repro.particles.compiled import (
    BACKEND_ENV,
    KMAX,
    PythonBackend,
    build_c_backend,
    build_kernel_tier,
    build_numba_backend,
    c_source,
    find_c_compiler,
    install_compiled_tier,
    make_compiled_kernel_set,
)
from repro.particles.deposit import (
    deposit_charge,
    deposit_current_esirkepov_tiled,
)
from repro.particles.gather import gather_fields
from repro.particles.injection import UniformProfile
from repro.particles.kernels import (
    FALLBACK_VARIANT,
    KernelSet,
    available_kernel_variants,
    get_kernel_set,
    kernel_tier_status,
    mark_tier_unavailable,
    register_kernel_set,
    resolve_kernel_set,
    validate_kernel_set,
)
from repro.particles.species import Species


def make_grid(ndim, n=8, guards=5, dtype=np.float64):
    grid = YeeGrid((n,) * ndim, (0.0,) * ndim, (float(n),) * ndim,
                   guards=guards)
    if dtype is not np.float64:
        grid.set_precision(dtype)
    return grid


def seed_fields(grid, seed=0):
    rng = np.random.default_rng(seed)
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        vals = rng.standard_normal(grid.shape)
        grid.fields[comp][...] = vals.astype(grid.dtype)


def particle_cloud(grid, n=60, seed=1, spread=0.25):
    rng = np.random.default_rng(seed)
    lo = np.asarray(grid.lo) + 2.0
    hi = np.asarray(grid.hi) - 2.0
    pos = lo + (hi - lo) * rng.random((n, grid.ndim))
    vel = rng.standard_normal((n, 3))
    wts = 1.0 + rng.random(n)
    return pos, vel, wts


@pytest.fixture
def python_set():
    """The compiled tier running on the un-jitted scalar twins."""
    return make_compiled_kernel_set(PythonBackend())


# -- python-twin equivalence -------------------------------------------------

@pytest.mark.parametrize("ndim", [1, 2, 3])
@pytest.mark.parametrize("order", [1, 2, 3])
def test_python_twin_gather_matches_numpy(python_set, ndim, order):
    grid = make_grid(ndim)
    seed_fields(grid)
    pos, _, _ = particle_cloud(grid, n=40)
    e_ref, b_ref = gather_fields(grid, pos, order=order)
    e_twin, b_twin = python_set.gather(grid, pos, order=order)
    np.testing.assert_allclose(e_twin, e_ref, rtol=0, atol=1e-13)
    np.testing.assert_allclose(b_twin, b_ref, rtol=0, atol=1e-13)
    assert e_twin.dtype == np.float64 and b_twin.dtype == np.float64


@pytest.mark.parametrize("ndim", [1, 2, 3])
@pytest.mark.parametrize("order", [1, 2, 3])
def test_python_twin_deposits_match_numpy(python_set, ndim, order):
    grid_a = make_grid(ndim)
    grid_b = make_grid(ndim)
    pos, vel, wts = particle_cloud(grid_a, n=40)
    dt = 0.1
    disp = 0.3 * np.arange(1, grid_a.ndim + 1)
    pos_new = pos + disp

    deposit_charge(grid_a, pos, wts, charge=-2.0, order=order)
    python_set.deposit_charge(grid_b, pos, wts, charge=-2.0, order=order)
    np.testing.assert_allclose(
        grid_b.fields["rho"], grid_a.fields["rho"], rtol=0, atol=1e-12
    )

    for g in (grid_a, grid_b):
        g.zero_sources()
    deposit_current_esirkepov_tiled(
        grid_a, pos, pos_new, vel, wts, charge=-2.0, dt=dt, order=order
    )
    python_set.deposit_current(
        grid_b, pos, pos_new, vel, wts, charge=-2.0, dt=dt, order=order
    )
    for comp in ("Jx", "Jy", "Jz"):
        np.testing.assert_allclose(
            grid_b.fields[comp], grid_a.fields[comp], rtol=0, atol=1e-11,
            err_msg=comp,
        )


def test_python_twin_direct_current_matches_numpy(python_set):
    from repro.particles.deposit import deposit_current_direct

    grid_a = make_grid(2)
    grid_b = make_grid(2)
    pos, vel, wts = particle_cloud(grid_a, n=40)
    deposit_current_direct(grid_a, pos, vel, wts, charge=1.5, order=2)
    python_set.deposit_current_direct(grid_b, pos, vel, wts, charge=1.5,
                                      order=2)
    for comp in ("Jx", "Jy", "Jz"):
        np.testing.assert_allclose(
            grid_b.fields[comp], grid_a.fields[comp], rtol=0, atol=1e-12,
            err_msg=comp,
        )


# -- native backend (when available in this environment) ---------------------

def _native_available():
    return "compiled" in available_kernel_variants()


@pytest.mark.skipif(not _native_available(),
                    reason=kernel_tier_status().get("compiled", ""))
@pytest.mark.parametrize("ndim", [1, 2, 3])
def test_native_compiled_tier_machine_precision(ndim):
    errors = validate_kernel_set("compiled", ndim=ndim, order=3)
    assert max(errors.values()) < 1e-12, errors


@pytest.mark.skipif(not _native_available(),
                    reason=kernel_tier_status().get("compiled", ""))
def test_native_tier_reports_backend():
    ks = get_kernel_set("compiled")
    assert ks.backend in ("numba", "c")
    assert kernel_tier_status()["compiled"] == f"available ({ks.backend})"


def test_c_source_emits_both_precisions():
    src = c_source()
    assert "gather_comp_f64" in src and "gather_comp_f32" in src
    assert "@REAL@" not in src and "@SUF@" not in src


# -- wide windows and guard shortage -----------------------------------------

def test_wide_window_falls_back_to_tiled(python_set):
    grid_a = make_grid(2, n=24, guards=10)
    grid_b = make_grid(2, n=24, guards=10)
    rng = np.random.default_rng(3)
    pos = 10.0 + 4.0 * rng.random((20, 2))
    vel = rng.standard_normal((20, 3))
    wts = np.ones(20)
    # displacement wide enough that K > KMAX, yet small enough that the
    # tiled fallback still fits in the guard layer
    from repro.particles.deposit import esirkepov_window

    disp = 3.2
    assert esirkepov_window(3, disp, tight=True) > KMAX
    pos_new = pos + np.array([disp, 0.5])
    python_set.deposit_current(grid_a, pos, pos_new, vel, wts, charge=1.0,
                               dt=0.2, order=3)
    deposit_current_esirkepov_tiled(grid_b, pos, pos_new, vel, wts,
                                    charge=1.0, dt=0.2, order=3)
    for comp in ("Jx", "Jy", "Jz"):
        np.testing.assert_allclose(
            grid_a.fields[comp], grid_b.fields[comp], rtol=0, atol=1e-12
        )


def test_guard_shortage_raises(python_set):
    grid = make_grid(2, n=16, guards=2)
    pos = np.full((4, 2), 8.0)
    pos_new = pos + 3.5  # window needs more than 2 guard cells
    vel = np.zeros((4, 3))
    with pytest.raises(ConfigurationError, match="guard"):
        python_set.deposit_current(grid, pos, pos_new, vel, np.ones(4),
                                   charge=1.0, dt=0.1, order=3)


# -- backend selection and graceful fallback ---------------------------------

def test_backend_env_rejects_unknown(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "simd")
    with pytest.raises(ConfigurationError, match=BACKEND_ENV):
        build_kernel_tier()


def test_backend_env_none_disables(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "none")
    ks, detail = build_kernel_tier()
    assert ks is None
    assert "disabled" in detail


def test_no_backend_reports_both_reasons(monkeypatch):
    monkeypatch.setattr(compiled, "_import_numba", lambda: None)
    monkeypatch.setattr(compiled, "find_c_compiler", lambda: None)
    ks, detail = build_kernel_tier("auto")
    assert ks is None
    assert "numba not importable" in detail
    assert "no C compiler" in detail


def test_numba_only_choice_without_numba(monkeypatch):
    monkeypatch.setattr(compiled, "_import_numba", lambda: None)
    ks, detail = build_kernel_tier("numba")
    assert ks is None
    assert "numba" in detail


def test_c_only_choice_without_compiler(monkeypatch):
    monkeypatch.setattr(compiled, "find_c_compiler", lambda: None)
    ks, detail = build_kernel_tier("c")
    assert ks is None
    assert "compiler" in detail


def test_unavailable_tier_resolves_to_tiled(monkeypatch):
    monkeypatch.setattr(kernels, "_REGISTRY", {
        name: ks for name, ks in kernels._REGISTRY.items()
        if name != "compiled"
    })
    monkeypatch.setattr(kernels, "_UNAVAILABLE",
                        {"compiled": "numba not importable; no C compiler"})
    ks, reason = resolve_kernel_set("compiled")
    assert ks.name == FALLBACK_VARIANT
    assert "no C compiler" in reason
    assert kernel_tier_status()["compiled"] == (
        "numba not importable; no C compiler"
    )


def test_unavailable_tier_simulation_falls_back(monkeypatch):
    monkeypatch.setattr(kernels, "_REGISTRY", {
        name: ks for name, ks in kernels._REGISTRY.items()
        if name != "compiled"
    })
    monkeypatch.setattr(kernels, "_UNAVAILABLE", {"compiled": "probe failed"})
    grid = YeeGrid((12, 12), (0.0, 0.0), (12.0e-6, 12.0e-6), guards=4)
    sim = Simulation(grid, dt=2.0e-15, kernels="compiled")
    assert sim.kernels == FALLBACK_VARIANT
    assert sim.kernel_fallback_reason == "probe failed"


def test_available_variant_has_no_fallback_reason():
    ks, reason = resolve_kernel_set("tiled")
    assert ks.name == "tiled" and reason is None


def test_unknown_variant_still_raises_through_resolve():
    with pytest.raises(ConfigurationError, match="unknown kernel variant"):
        resolve_kernel_set("simd")


def test_install_compiled_tier_idempotent(monkeypatch):
    # idempotent whether the tier registered or was marked unavailable
    install_compiled_tier()
    status_before = kernel_tier_status()
    install_compiled_tier()
    assert kernel_tier_status() == status_before


def test_install_marks_unavailable_when_probes_fail(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "auto")
    monkeypatch.setattr(kernels, "_REGISTRY", {
        name: ks for name, ks in kernels._REGISTRY.items()
        if name != "compiled"
    })
    monkeypatch.setattr(kernels, "_UNAVAILABLE", {})
    monkeypatch.setattr(compiled, "_import_numba", lambda: None)
    monkeypatch.setattr(compiled, "find_c_compiler", lambda: None)
    install_compiled_tier()
    assert "compiled" not in available_kernel_variants()
    assert "numba not importable" in kernel_tier_status()["compiled"]


def test_probe_builders_agree_with_environment():
    # whichever probes the import-time environment selection allowed to
    # succeed, the registry state must match
    import os

    choice = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    expected = False
    if choice in ("auto", "numba"):
        expected = expected or build_numba_backend()[0] is not None
    if choice in ("auto", "c"):
        expected = expected or build_c_backend()[0] is not None
    assert ("compiled" in available_kernel_variants()) == expected
    assert find_c_compiler() is None or isinstance(find_c_compiler(), str)


# -- atomic registration ------------------------------------------------------

def test_failed_batch_registration_installs_nothing(monkeypatch):
    monkeypatch.setattr(kernels, "_REGISTRY", dict(kernels._REGISTRY))
    tiled = get_kernel_set("tiled")

    def clone(name):
        return KernelSet(
            name=name,
            gather=tiled.gather,
            deposit_charge=tiled.deposit_charge,
            deposit_current=tiled.deposit_current,
            deposit_current_direct=tiled.deposit_current_direct,
        )

    before = available_kernel_variants()
    with pytest.raises(ConfigurationError, match="duplicate"):
        register_kernel_set(clone("fresh_a"), clone("tiled"))
    assert available_kernel_variants() == before  # fresh_a NOT installed

    with pytest.raises(ConfigurationError, match="duplicate"):
        register_kernel_set(clone("fresh_b"), clone("fresh_b"))
    assert available_kernel_variants() == before

    bad = KernelSet(
        name="fresh_c",
        gather="not callable",
        deposit_charge=tiled.deposit_charge,
        deposit_current=tiled.deposit_current,
        deposit_current_direct=tiled.deposit_current_direct,
    )
    with pytest.raises(ConfigurationError, match="callable"):
        register_kernel_set(clone("fresh_d"), bad)
    assert available_kernel_variants() == before


def test_successful_batch_registers_all_and_clears_unavailable(monkeypatch):
    monkeypatch.setattr(kernels, "_REGISTRY", dict(kernels._REGISTRY))
    monkeypatch.setattr(kernels, "_UNAVAILABLE", {"fresh_e": "was broken"})
    tiled = get_kernel_set("tiled")
    register_kernel_set(KernelSet(
        name="fresh_e",
        gather=tiled.gather,
        deposit_charge=tiled.deposit_charge,
        deposit_current=tiled.deposit_current,
        deposit_current_direct=tiled.deposit_current_direct,
    ))
    assert "fresh_e" in available_kernel_variants()
    assert "fresh_e" not in kernels._UNAVAILABLE


def test_mark_tier_unavailable_rejects_registered_name():
    with pytest.raises(ConfigurationError, match="registered"):
        mark_tier_unavailable("tiled", "nope")


# -- dispatch counters --------------------------------------------------------

def test_dispatch_counters_label_actual_variant():
    from repro.constants import m_e, plasma_wavelength, q_e
    from repro.grid.maxwell import cfl_dt

    n0 = 1e24
    length = plasma_wavelength(n0)
    grid = YeeGrid((16,), (0.0,), (length,), guards=4)
    sim = Simulation(grid, dt=cfl_dt((length / 16,), 0.9), shape_order=2,
                     smoothing_passes=0, kernels="tiled")
    sim.add_species(Species("e", charge=-q_e, mass=m_e, ndim=1),
                    profile=UniformProfile(n0), ppc=2)
    _, metrics = attach_observability(sim)
    sim.step(3)
    snap = metrics.snapshot()
    assert snap["kernel.dispatch{phase=deposit,variant=tiled}"] == 3.0
    assert snap["kernel.dispatch{phase=gather,variant=tiled}"] == 3.0
