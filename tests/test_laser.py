"""Tests for laser profiles and the antenna."""

import numpy as np
import pytest

from repro.constants import a0_to_field, c, eps0, fs, um
from repro.exceptions import ConfigurationError
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.yee import YeeGrid
from repro.laser.antenna import LaserAntenna
from repro.laser.profiles import GaussianLaser


def make_laser(**kw):
    args = dict(wavelength=0.8 * um, a0=2.0, waist=5 * um, duration=10 * fs)
    args.update(kw)
    return GaussianLaser(**args)


def test_laser_validation():
    with pytest.raises(ConfigurationError):
        make_laser(polarization="x")
    with pytest.raises(ConfigurationError):
        make_laser(wavelength=-1.0)
    with pytest.raises(ConfigurationError):
        make_laser(duration=0.0)


def test_peak_field_from_a0():
    laser = make_laser(a0=3.0)
    assert laser.e_peak == pytest.approx(a0_to_field(3.0, 0.8 * um))
    # a0 = 1 at 0.8 um is ~4e12 V/m
    assert a0_to_field(1.0, 0.8 * um) == pytest.approx(4.0e12, rel=0.01)


def test_envelope_peaks_at_t_peak():
    laser = make_laser(t_peak=50 * fs)
    t = np.linspace(0, 100 * fs, 1001)
    env = laser.envelope(t)
    assert t[np.argmax(env)] == pytest.approx(50 * fs, abs=0.2 * fs)
    assert env.max() == pytest.approx(1.0)


def test_field_at_plane_peak_amplitude():
    laser = make_laser()
    t = laser.t_peak
    r = np.linspace(-15 * um, 15 * um, 301)
    field = laser.field_at_plane(t, r)
    assert np.abs(field).max() <= laser.e_peak * (1 + 1e-9)
    assert np.abs(field).max() > 0.8 * laser.e_peak  # near a carrier crest


def test_transverse_gaussian_width():
    laser = make_laser(waist=5 * um)
    t = laser.t_peak
    # envelope of |field| over a carrier period
    r = np.array([0.0, 5 * um])
    amps = []
    for ri in r:
        ts = t + np.linspace(0, laser.wavelength / c, 40)
        amps.append(max(abs(laser.field_at_plane(ti, np.array([ri]))[0]) for ti in ts))
    assert amps[1] / amps[0] == pytest.approx(np.exp(-1.0), rel=0.1)


def test_oblique_incidence_phase_ramp():
    laser = make_laser(incidence_angle=np.pi / 4)
    t = laser.t_peak
    r = np.linspace(-2 * um, 2 * um, 400)
    field = laser.field_at_plane(t, r)
    # transverse wavelength = lambda / sin(theta)
    zero_crossings = np.count_nonzero(np.diff(np.sign(field)))
    lam_t = 0.8 * um / np.sin(np.pi / 4)
    expected = int(4 * um / (lam_t / 2))
    assert abs(zero_crossings - expected) <= 2


def test_duration_conversions():
    laser = make_laser(duration=10 * fs)
    assert laser.duration_fwhm_intensity() == pytest.approx(
        10 * fs * np.sqrt(2 * np.log(2))
    )
    assert laser.total_emission_time() > laser.t_peak


def test_antenna_emits_symmetric_waves_1d():
    # resolve the 0.8 um carrier with 16 cells per wavelength
    g = YeeGrid((2048,), (0.0,), (102.4e-6,), guards=3)
    laser = make_laser(t_peak=40 * fs, duration=8 * fs)
    antenna = LaserAntenna(laser, position=51.2e-6)
    dt = cfl_dt(g.dx, 0.9)
    solver = MaxwellSolver(g, dt)
    t = 0.0
    while t < laser.t_peak + 60 * fs:
        g.fields["Jy"].fill(0.0)  # the PIC loop zeroes sources every step
        antenna.add_current(g, t + dt / 2)
        solver.step()
        t += dt
    ey = g.interior_view("Ey")
    n = len(ey)
    left = np.abs(ey[: n // 2 - 2]).max()
    right = np.abs(ey[n // 2 + 2 :]).max()
    assert left == pytest.approx(right, rel=0.05)  # symmetric emission
    assert right == pytest.approx(laser.e_peak, rel=0.25)


def test_antenna_skips_when_outside_domain():
    g = YeeGrid((32,), (0.0,), (32.0e-6,), guards=3)
    laser = make_laser()
    antenna = LaserAntenna(laser, position=64.0e-6)  # outside
    antenna.add_current(g, laser.t_peak)
    assert np.all(g.fields["Jy"] == 0.0)


def test_antenna_stops_after_emission():
    g = YeeGrid((32,), (0.0,), (32.0e-6,), guards=3)
    laser = make_laser()
    antenna = LaserAntenna(laser, position=16.0e-6)
    antenna.add_current(g, laser.total_emission_time() + 1 * fs)
    assert np.all(g.fields["Jy"] == 0.0)


def test_antenna_3d_oblique_rejected():
    g = YeeGrid((8, 8, 8), (0, 0, 0), (8e-6, 8e-6, 8e-6), guards=2)
    laser = make_laser(incidence_angle=0.3)
    antenna = LaserAntenna(laser, position=4e-6)
    with pytest.raises(ConfigurationError):
        antenna.add_current(g, laser.t_peak)


def test_antenna_polarization_selects_component():
    g = YeeGrid((32, 16), (0.0, -8e-6), (32.0e-6, 8e-6), guards=3)
    laser_z = make_laser(polarization="z")
    LaserAntenna(laser_z, position=8e-6).add_current(g, laser_z.t_peak)
    assert np.abs(g.fields["Jz"]).max() > 0
    assert np.all(g.fields["Jy"] == 0.0)


def test_focusing_validation():
    with pytest.raises(ConfigurationError):
        make_laser(incidence_angle=0.3, focal_distance=1e-5)


def test_focused_beam_converges_to_waist():
    """A pulse injected with converging wavefronts reaches its nominal
    waist and amplitude at the focal plane (2D propagation test)."""
    from repro.core.simulation import Simulation

    lam = 0.8 * um
    w0 = 2.0 * um
    focus = 18 * um
    g = YeeGrid(
        (320, 96), (0.0, -9.6 * um), (32 * um, 9.6 * um), guards=4
    )
    sim = Simulation(g, boundaries="damped", n_absorber=10, smoothing_passes=0)
    laser = GaussianLaser(
        lam, a0=1.0, waist=w0, duration=8 * fs, t_peak=16 * fs,
        focal_distance=focus,
    )
    antenna_x = 2 * um
    sim.add_laser(LaserAntenna(laser, position=antenna_x))
    # run until the peak sits at the focal plane
    sim.run_until(laser.t_peak + focus / c)
    ey = sim.grid.interior_view("Ey")
    x = sim.grid.axis_coords(0, "Ey")
    y = sim.grid.axis_coords(1, "Ey")
    i_focus = np.argmin(np.abs(x - (antenna_x + focus)))
    i_before = np.argmin(np.abs(x - (antenna_x + 0.3 * focus)))

    def rms_width(ix):
        # envelope over a few cells around ix to wash out the carrier
        band = np.abs(ey[ix - 4 : ix + 5, :]).max(axis=0)
        power = band**2
        return np.sqrt(np.sum(power * y**2) / np.sum(power))

    width_focus = rms_width(i_focus)
    width_before = rms_width(i_before)
    # the beam narrows toward the focus ...
    assert width_focus < 0.75 * width_before
    # ... to the nominal waist: Gaussian |E|^2 rms width = w0/2
    assert width_focus == pytest.approx(w0 / 2, rel=0.35)
    # and the field peaks near a0's value at focus
    amp_focus = np.abs(ey[i_focus - 6 : i_focus + 7, :]).max()
    assert amp_focus == pytest.approx(laser.e_peak, rel=0.3)
