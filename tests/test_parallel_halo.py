"""Tests for the pairwise halo exchange: overlap regions, real payloads,
message aggregation, and equivalence with the global-assembly reference."""

from collections import Counter

import numpy as np
import pytest

from repro.exceptions import DecompositionError
from repro.grid.boundary import periodic_image_shifts
from repro.grid.yee import FIELD_COMPONENTS, SOURCE_COMPONENTS, YeeGrid
from repro.parallel.box import Box, chop_domain
from repro.parallel.comm import SimComm
from repro.parallel.halo import (
    assemble_global,
    exchange_halos,
    fold_sources_global,
    fold_sources_pairwise,
    halo_bytes_per_box,
    neighbor_overlaps,
    scatter_local,
)
from repro.perfmodel.machines import get_machine
from repro.perfmodel.network import measured_halo_time


def make_setup(n=16, max_grid=8, guards=3):
    domain = YeeGrid((n, n), (0.0, 0.0), (float(n), float(n)), guards=guards)
    boxes = chop_domain((n, n), max_grid)
    grids = []
    for b in boxes:
        lo = tuple(float(v) for v in b.lo)
        hi = tuple(float(v) for v in b.hi)
        grids.append(YeeGrid(b.shape, lo, hi, guards=guards))
    return domain, boxes, grids


def fill_random(grids, components, seed, valid_only=False):
    rng = np.random.default_rng(seed)
    for bg in grids:
        for comp in components:
            if valid_only:
                view = bg.fields[comp][bg.valid_slices(comp)]
            else:
                view = bg.fields[comp]
            view[...] = rng.uniform(-1.0, 1.0, size=view.shape)


def test_periodic_image_shifts():
    shifts = periodic_image_shifts((8, 4), periodic_axes=(1,))
    assert set(shifts) == {(0, -4), (0, 0), (0, 4)}
    assert periodic_image_shifts((8, 4)) == [(0, 0)]


def test_fold_sources_matches_monolithic_deposit():
    """Depositing particles per box then folding equals one global deposit."""
    from repro.constants import q_e
    from repro.particles.deposit import deposit_charge

    domain, boxes, grids = make_setup()
    rng = np.random.default_rng(30)
    pos = rng.uniform(0.5, 15.5, size=(60, 2))
    w = rng.uniform(0.5, 2.0, size=60)
    # monolithic reference
    ref = YeeGrid((16, 16), (0, 0), (16.0, 16.0), guards=3)
    deposit_charge(ref, pos, w, -q_e, order=2)
    # per-box deposit of the particles each box owns
    for b, bg in zip(boxes, grids):
        mask = np.ones(len(pos), dtype=bool)
        for d in range(2):
            mask &= (pos[:, d] >= b.lo[d]) & (pos[:, d] < b.hi[d])
        if np.any(mask):
            deposit_charge(bg, pos[mask], w[mask], -q_e, order=2)
    fold_sources_global(domain, grids, boxes, periodic_axes=())
    np.testing.assert_allclose(
        domain.fields["rho"], ref.fields["rho"], rtol=1e-12, atol=1e-25
    )


def test_assemble_scatter_roundtrip():
    domain, boxes, grids = make_setup()
    # give every box a field that is a pure function of global position
    for b, bg in zip(boxes, grids):
        x = bg.axis_coords(0, "Ey")
        y = bg.axis_coords(1, "Ey")
        bg.interior_view("Ey")[...] = x[:, None] + 10.0 * y[None, :]
    assemble_global(domain, grids, boxes, ("Ey",), periodic_axes=(0, 1))
    scatter_local(domain, grids, boxes, ("Ey",))
    # after scatter, each box's guards hold the neighbour's (global) values
    for b, bg in zip(boxes, grids):
        g = bg.guards
        # check one guard plane against the global function (mod periodic);
        # Ey is nodal in x and staggered (8 valid samples) in y
        x_guard = (b.lo[0] - 1.0) % 16.0
        y = bg.axis_coords(1, "Ey")
        expected = x_guard + 10.0 * y
        np.testing.assert_allclose(
            bg.fields["Ey"][g - 1, g : g + bg.n_cells[1]], expected, rtol=1e-12
        )


def test_neighbor_overlaps_fill_is_exact_partition():
    """Fill overlaps tile each box's full array exactly once per position,
    except the box's own owned cells — every guard sample has one owner."""
    guards = 3
    _, boxes, _ = make_setup(n=16, max_grid=8, guards=guards)
    overlaps = neighbor_overlaps(
        boxes, (16, 16), guards=guards, periodic_axes=(0, 1), kind="fill"
    )
    for i, b in enumerate(boxes):
        extent = tuple(s + 1 + 2 * guards for s in b.shape)
        cover = np.zeros(extent, dtype=np.int64)
        for ov in (o for o in overlaps if o.dst == i):
            sl = tuple(
                slice(lo - bl + guards, hi - bl + guards)
                for lo, hi, bl in zip(ov.region.lo, ov.region.hi, b.lo)
            )
            cover[sl] += 1
        owned = tuple(slice(guards, guards + s) for s in b.shape)
        assert np.all(cover[owned] == 0)
        cover[owned] = 1
        np.testing.assert_array_equal(cover, np.ones(extent, dtype=np.int64))


def test_neighbor_overlaps_symmetric_counts():
    _, boxes, _ = make_setup(n=16, max_grid=8)
    overlaps = neighbor_overlaps(
        boxes, (16, 16), guards=2, periodic_axes=(0, 1), kind="fill"
    )
    # 2x2 boxes on a periodic torus: every box sees all 3 others
    partners = {}
    size = Counter()
    for ov in overlaps:
        partners.setdefault(ov.dst, set()).add(ov.src)
        size[(ov.dst, ov.src)] += ov.n_samples
    for i in range(4):
        assert partners[i] == {0, 1, 2, 3} - {i}
    # equal-size boxes: the overlap volumes are symmetric per pair
    for (i, j), n in size.items():
        assert size[(j, i)] == n


def test_neighbor_overlaps_rejects_unknown_kind():
    _, boxes, _ = make_setup()
    with pytest.raises(DecompositionError):
        neighbor_overlaps(boxes, (16, 16), guards=2, kind="sideways")


def test_exchange_halos_matches_assemble_scatter():
    """The pairwise fill is bit-identical to assemble + periodic + scatter,
    over the boxes' full (guard-padded) arrays."""
    guards = 3
    domain, boxes, grids_ref = make_setup(guards=guards)
    _, _, grids_pw = make_setup(guards=guards)
    fill_random(grids_ref, FIELD_COMPONENTS, seed=7, valid_only=True)
    for ref, pw in zip(grids_ref, grids_pw):
        for comp in FIELD_COMPONENTS:
            pw.fields[comp][...] = ref.fields[comp]

    assemble_global(domain, grids_ref, boxes, FIELD_COMPONENTS, periodic_axes=(0, 1))
    scatter_local(domain, grids_ref, boxes, FIELD_COMPONENTS)

    overlaps = neighbor_overlaps(
        boxes, (16, 16), guards=guards, periodic_axes=(0, 1), kind="fill"
    )
    comm = SimComm(2)
    exchange_halos(
        comm, grids_pw, boxes, overlaps, [0, 0, 1, 1], guards=guards
    )
    for ref, pw in zip(grids_ref, grids_pw):
        for comp in FIELD_COMPONENTS:
            np.testing.assert_array_equal(pw.fields[comp], ref.fields[comp])


def test_fold_pairwise_matches_global_fold():
    """Pairwise deposit folding equals folding on the assembled global
    grid (up to floating-point summation order) on every valid region."""
    guards = 3
    domain, boxes, grids_ref = make_setup(guards=guards)
    _, _, grids_pw = make_setup(guards=guards)
    fill_random(grids_ref, SOURCE_COMPONENTS, seed=11, valid_only=False)
    for ref, pw in zip(grids_ref, grids_pw):
        for comp in SOURCE_COMPONENTS:
            pw.fields[comp][...] = ref.fields[comp]

    fold_sources_global(domain, grids_ref, boxes, periodic_axes=(0, 1))
    scatter_local(domain, grids_ref, boxes, SOURCE_COMPONENTS)

    overlaps = neighbor_overlaps(
        boxes, (16, 16), guards=guards, periodic_axes=(0, 1), kind="fold"
    )
    comm = SimComm(4)
    fold_sources_pairwise(
        comm, grids_pw, boxes, overlaps, [0, 1, 2, 3], guards=guards
    )
    for ref, pw in zip(grids_ref, grids_pw):
        for comp in SOURCE_COMPONENTS:
            sl = ref.valid_slices(comp)
            np.testing.assert_allclose(
                pw.fields[comp][sl], ref.fields[comp][sl],
                rtol=1e-13, atol=1e-15,
            )


def test_exchange_aggregates_one_message_per_rank_pair():
    """Acceptance: one aggregated send per (src_rank, dst_rank) per phase,
    every payload non-empty, and the log reconciles with pair_bytes."""
    guards = 3
    _, boxes, grids = make_setup(guards=guards)
    fill_random(grids, FIELD_COMPONENTS, seed=3)
    overlaps = neighbor_overlaps(
        boxes, (16, 16), guards=guards, periodic_axes=(0, 1), kind="fill"
    )
    comm = SimComm(4)
    rank_of = [0, 1, 2, 3]
    stats = exchange_halos(comm, grids, boxes, overlaps, rank_of, guards=guards)

    sends = [e for e in comm.log if e.kind == "send"]
    assert sends and all(e.nbytes > 0 for e in sends)
    counts = Counter((e.src, e.dst) for e in sends)
    assert max(counts.values()) == 1  # aggregation: one message per pair
    assert set(counts) == {
        (r, s) for r in range(4) for s in range(4) if r != s
    }
    assert stats.messages == len(sends)
    # log bytes == pair_bytes == the stats' payload accounting
    logged = comm.pair_bytes_for_tag("halo")
    assert logged == dict(comm.pair_bytes)
    assert sum(logged.values()) == stats.payload_bytes
    assert stats.local_copies == 0


def test_same_rank_exchange_short_circuits_to_copies():
    guards = 3
    domain, boxes, grids_ref = make_setup(guards=guards)
    _, _, grids = make_setup(guards=guards)
    fill_random(grids_ref, FIELD_COMPONENTS, seed=5, valid_only=True)
    for ref, pw in zip(grids_ref, grids):
        for comp in FIELD_COMPONENTS:
            pw.fields[comp][...] = ref.fields[comp]
    assemble_global(domain, grids_ref, boxes, FIELD_COMPONENTS, periodic_axes=(0, 1))
    scatter_local(domain, grids_ref, boxes, FIELD_COMPONENTS)

    overlaps = neighbor_overlaps(
        boxes, (16, 16), guards=guards, periodic_axes=(0, 1), kind="fill"
    )
    comm = SimComm(1)
    stats = exchange_halos(comm, grids, boxes, overlaps, [0, 0, 0, 0], guards=guards)
    assert comm.total_bytes() == 0 and comm.total_messages() == 0
    assert stats.messages == 0 and stats.payload_bytes == 0
    assert stats.local_copies > 0 and stats.samples > 0
    # the physics is identical whether the neighbor is local or remote
    for ref, pw in zip(grids_ref, grids):
        for comp in FIELD_COMPONENTS:
            np.testing.assert_array_equal(pw.fields[comp], ref.fields[comp])


def test_exchange_kind_mismatch_raises():
    guards = 3
    _, boxes, grids = make_setup(guards=guards)
    fold = neighbor_overlaps(
        boxes, (16, 16), guards=guards, periodic_axes=(0, 1), kind="fold"
    )
    fill = neighbor_overlaps(
        boxes, (16, 16), guards=guards, periodic_axes=(0, 1), kind="fill"
    )
    comm = SimComm(4)
    with pytest.raises(DecompositionError):
        exchange_halos(comm, grids, boxes, fold, [0, 1, 2, 3], guards=guards)
    with pytest.raises(DecompositionError):
        fold_sources_pairwise(comm, grids, boxes, fill, [0, 1, 2, 3], guards=guards)


def test_measured_halo_time_bottleneck_sender():
    machine = get_machine("summit")
    bw = machine.net_gb_per_s * 1e9 / machine.devices_per_node
    pair_bytes = {(0, 1): 2_000_000, (0, 2): 2_000_000, (1, 0): 500_000,
                  (3, 3): 10**9}  # self-pairs never cost wire time
    t = measured_halo_time(machine, pair_bytes, messages_per_pair=2)
    expected = 4_000_000 / bw + 4 * machine.net_latency  # rank 0 dominates
    assert t == pytest.approx(expected)
    assert measured_halo_time(machine, {}) == 0.0


def test_halo_bytes_per_box():
    b = Box((0, 0), (8, 8))
    nbytes = halo_bytes_per_box(b, guards=2, n_components=6)
    assert nbytes == (12 * 12 - 8 * 8) * 6 * 8


# -- cross-transport parity (see tests/conftest.py) --------------------------

from tests.conftest import assert_runs_equal, make_langmuir_build  # noqa: E402


def test_halo_exchange_cross_transport(transport_runner, golden_langmuir):
    """Fold + guard-fill halo traffic is transport-invariant: the same
    scenario run with one worker process per rank produces bit-identical
    fields and the exact same aggregated halo accounting as loopback."""
    want = golden_langmuir(n_steps=6)
    got = transport_runner(make_langmuir_build(), 6)
    assert got.halo == want.halo
    assert_runs_equal(got, want)
