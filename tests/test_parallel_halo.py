"""Tests for halo exchange, source folding and overlap accounting."""

import numpy as np
import pytest

from repro.grid.yee import FIELD_COMPONENTS, YeeGrid
from repro.parallel.box import Box, chop_domain
from repro.parallel.comm import SimComm
from repro.parallel.halo import (
    account_halo_traffic,
    assemble_global,
    fold_sources_global,
    halo_bytes_per_box,
    neighbor_overlaps,
    scatter_local,
)


def make_setup(n=16, max_grid=8, guards=3):
    domain = YeeGrid((n, n), (0.0, 0.0), (float(n), float(n)), guards=guards)
    boxes = chop_domain((n, n), max_grid)
    grids = []
    for b in boxes:
        lo = tuple(float(v) for v in b.lo)
        hi = tuple(float(v) for v in b.hi)
        grids.append(YeeGrid(b.shape, lo, hi, guards=guards))
    return domain, boxes, grids


def test_fold_sources_matches_monolithic_deposit():
    """Depositing particles per box then folding equals one global deposit."""
    from repro.constants import q_e
    from repro.particles.deposit import deposit_charge

    domain, boxes, grids = make_setup()
    rng = np.random.default_rng(30)
    pos = rng.uniform(0.5, 15.5, size=(60, 2))
    w = rng.uniform(0.5, 2.0, size=60)
    # monolithic reference
    ref = YeeGrid((16, 16), (0, 0), (16.0, 16.0), guards=3)
    deposit_charge(ref, pos, w, -q_e, order=2)
    # per-box deposit of the particles each box owns
    for b, bg in zip(boxes, grids):
        mask = np.ones(len(pos), dtype=bool)
        for d in range(2):
            mask &= (pos[:, d] >= b.lo[d]) & (pos[:, d] < b.hi[d])
        if np.any(mask):
            deposit_charge(bg, pos[mask], w[mask], -q_e, order=2)
    fold_sources_global(domain, grids, boxes, periodic_axes=())
    np.testing.assert_allclose(
        domain.fields["rho"], ref.fields["rho"], rtol=1e-12, atol=1e-25
    )


def test_assemble_scatter_roundtrip():
    domain, boxes, grids = make_setup()
    # give every box a field that is a pure function of global position
    for b, bg in zip(boxes, grids):
        x = bg.axis_coords(0, "Ey")
        y = bg.axis_coords(1, "Ey")
        bg.interior_view("Ey")[...] = x[:, None] + 10.0 * y[None, :]
    assemble_global(domain, grids, boxes, ("Ey",), periodic_axes=(0, 1))
    scatter_local(domain, grids, boxes, ("Ey",))
    # after scatter, each box's guards hold the neighbour's (global) values
    for b, bg in zip(boxes, grids):
        g = bg.guards
        # check one guard plane against the global function (mod periodic);
        # Ey is nodal in x and staggered (8 valid samples) in y
        x_guard = (b.lo[0] - 1.0) % 16.0
        y = bg.axis_coords(1, "Ey")
        expected = x_guard + 10.0 * y
        np.testing.assert_allclose(
            bg.fields["Ey"][g - 1, g : g + bg.n_cells[1]], expected, rtol=1e-12
        )


def test_neighbor_overlaps_symmetric_counts():
    _, boxes, _ = make_setup(n=16, max_grid=8)
    overlaps = neighbor_overlaps(boxes, (16, 16), guards=2, periodic_axes=(0, 1))
    # 2x2 boxes on a periodic torus: every box sees all 3 others
    partners = {}
    for i, j, n in overlaps:
        partners.setdefault(i, set()).add(j)
    for i in range(4):
        assert partners[i] == {0, 1, 2, 3} - {i}
    # symmetry of the overlap sizes
    size = {(i, j): n for i, j, n in overlaps}
    for (i, j), n in size.items():
        assert size[(j, i)] == n


def test_account_halo_traffic_skips_same_rank():
    _, boxes, _ = make_setup(n=16, max_grid=8)
    overlaps = neighbor_overlaps(boxes, (16, 16), guards=2, periodic_axes=(0, 1))
    comm_all_one = SimComm(1)
    account_halo_traffic(comm_all_one, overlaps, [0, 0, 0, 0], n_components=6)
    assert comm_all_one.total_bytes() == 0
    comm_split = SimComm(2)
    account_halo_traffic(comm_split, overlaps, [0, 0, 1, 1], n_components=6)
    assert comm_split.total_bytes() > 0


def test_halo_bytes_per_box():
    b = Box((0, 0), (8, 8))
    nbytes = halo_bytes_per_box(b, guards=2, n_components=6)
    assert nbytes == (12 * 12 - 8 * 8) * 6 * 8
