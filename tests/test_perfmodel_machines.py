"""Tests for the machine catalog and roofline calibration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.perfmodel.kernels import CALIBRATION_WORKLOAD, pic_step_counts
from repro.perfmodel.machines import MACHINES, get_machine
from repro.perfmodel.roofline import device_flops, node_time_per_step


def test_catalog_matches_table2():
    f = get_machine("frontier")
    assert f.peak_tflops_dp == 47.9 and f.mem_tb_per_s == 3.3
    assert f.hpcg_pflops is None  # "not yet available" in the paper
    s = get_machine("summit")
    assert s.hpcg_pflops == 2.93 and s.n_nodes == 4608
    fu = get_machine("fugaku")
    assert fu.hpcg_pflops == 16.0 and fu.n_nodes == 158976
    p = get_machine("perlmutter")
    assert p.peak_tflops_sp == 19.5


def test_get_machine_case_insensitive_and_errors():
    assert get_machine("Summit").name == "Summit"
    with pytest.raises(ConfigurationError):
        get_machine("aurora")


def test_bw_fraction_physical():
    ai = pic_step_counts(**CALIBRATION_WORKLOAD).arithmetic_intensity
    for m in MACHINES.values():
        frac = m.bw_fraction(ai)
        assert 0.0 < frac <= 1.0


def test_dp_calibration_reproduces_table3():
    """By construction, the modelled DP rate equals the Table III input
    for the generic code path on every machine."""
    for key, m in MACHINES.items():
        rates = device_flops(m, mode="dp", optimized=False)
        assert rates["dp"] == pytest.approx(m.measured_tflops_dp, rel=1e-6)


def test_mp_prediction_shape():
    """MP predictions (not calibrated) must show the paper's qualitative
    pattern: SP flops dominate, a small DP remainder, and a faster step
    than DP mode."""
    for key, m in MACHINES.items():
        mp = device_flops(m, mode="mp", optimized=False)
        assert mp["sp"] > mp["dp"] > 0
        t_dp = node_time_per_step(m, 1e7, mode="dp", optimized=False)
        t_mp = node_time_per_step(m, 1e7, mode="mp", optimized=False)
        assert t_mp < t_dp


def test_fugaku_optimization_gain():
    """The A64FX-optimized path is ~3x the generic path (Sec. V.A.1
    reports 2.6-4.6x per kernel)."""
    m = get_machine("fugaku")
    t_gen = node_time_per_step(m, 1e6, mode="mp", optimized=False)
    t_opt = node_time_per_step(m, 1e6, mode="mp", optimized=True)
    gain = t_gen / t_opt
    assert 2.0 < gain < 5.0


def test_gpu_machines_unaffected_by_optimized_flag():
    m = get_machine("summit")
    assert node_time_per_step(m, 1e6, optimized=True) == pytest.approx(
        node_time_per_step(m, 1e6, optimized=False)
    )


def test_memory_bound_everywhere():
    """The compute leg of the roofline never binds for the PIC workload."""
    from repro.perfmodel.kernels import pic_step_counts
    from repro.perfmodel.roofline import device_time_for_counts

    counts = pic_step_counts(**CALIBRATION_WORKLOAD)
    for m in MACHINES.values():
        t = device_time_for_counts(m, counts, 1e6, "dp", optimized=False)
        t_mem_only = counts.bytes * 1e6 / (
            m.mem_tb_per_s * 1e12 * m.bw_fraction(counts.arithmetic_intensity)
        )
        assert t == pytest.approx(t_mem_only)
