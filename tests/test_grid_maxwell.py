"""Physics tests for the FDTD Maxwell solver: propagation, energy, CFL."""

import numpy as np
import pytest

from repro.constants import c
from repro.exceptions import StabilityError
from repro.grid.boundary import apply_periodic
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.yee import YeeGrid


def plane_wave_grid(n=128, wavelengths=4):
    """1D grid loaded with a right-going (Ey, Bz) plane wave."""
    length = 1.0
    g = YeeGrid((n,), (0.0,), (length,), guards=2)
    k = 2 * np.pi * wavelengths / length
    x_e = g.axis_coords(0, "Ey")
    x_b = g.axis_coords(0, "Bz")
    g.interior_view("Ey")[...] = np.sin(k * x_e)
    g.interior_view("Bz")[...] = np.sin(k * x_b) / c
    return g, k


def test_cfl_dt_formula():
    dt = cfl_dt((1.0, 1.0), cfl=1.0)
    assert dt == pytest.approx(1.0 / (c * np.sqrt(2.0)))


def test_cfl_violation_raises():
    g = YeeGrid((16,), (0.0,), (1.0,), guards=2)
    with pytest.raises(StabilityError):
        MaxwellSolver(g, dt=10.0 * cfl_dt(g.dx))


def test_plane_wave_travels_at_c():
    g, k = plane_wave_grid(n=256)
    dt = cfl_dt(g.dx, cfl=0.5)
    solver = MaxwellSolver(g, dt)
    steps = 160
    for _ in range(steps):
        apply_periodic(g, 0)
        solver.step()
    # the wave should be the initial profile shifted by c * t
    shift = c * steps * dt
    x_e = g.axis_coords(0, "Ey")
    expected = np.sin(k * (x_e - shift))
    measured = g.interior_view("Ey")
    # second-order dispersion at ~16 pts/wavelength: a few percent
    assert np.max(np.abs(measured - expected)) < 0.05


def test_energy_conserved_periodic():
    g, _ = plane_wave_grid(n=128)
    dt = cfl_dt(g.dx, cfl=0.9)
    solver = MaxwellSolver(g, dt)
    apply_periodic(g, 0)
    e0 = g.field_energy()
    for _ in range(300):
        apply_periodic(g, 0)
        solver.step()
    assert g.field_energy() == pytest.approx(e0, rel=1e-6)


def test_vacuum_stays_zero():
    g = YeeGrid((16, 16), (0, 0), (1, 1), guards=2)
    solver = MaxwellSolver(g, cfl_dt(g.dx, 0.9))
    for _ in range(10):
        solver.step()
    assert g.field_energy() == 0.0


def test_static_uniform_b_is_steady():
    g = YeeGrid((16, 16), (0, 0), (1, 1), guards=2)
    g.Bz[...] = 1.5
    solver = MaxwellSolver(g, cfl_dt(g.dx, 0.9))
    for _ in range(20):
        apply_periodic(g, 0)
        apply_periodic(g, 1)
        solver.step()
    np.testing.assert_allclose(g.interior_view("Bz"), 1.5, rtol=1e-12)
    assert np.max(np.abs(g.interior_view("Ex"))) == 0.0


def test_current_drives_e_field():
    """A uniform Jz for one step produces Ez = -J dt / eps0 (1D limit)."""
    from repro.constants import eps0

    g = YeeGrid((32,), (0.0,), (1.0,), guards=2)
    dt = cfl_dt(g.dx, 0.5)
    solver = MaxwellSolver(g, dt)
    g.Jz[...] = 2.0
    solver.push_e(1.0)
    np.testing.assert_allclose(
        g.interior_view("Ez"), -2.0 * dt / eps0, rtol=1e-12
    )


def test_2d_pulse_expands_isotropically():
    n = 64
    g = YeeGrid((n, n), (0, 0), (1, 1), guards=2)
    x = g.axis_coords(0, "Ez")
    y = g.axis_coords(1, "Ez")
    r2 = (x[:, None] - 0.5) ** 2 + (y[None, :] - 0.5) ** 2
    g.interior_view("Ez")[...] = np.exp(-r2 / 0.002)
    dt = cfl_dt(g.dx, 0.7)
    solver = MaxwellSolver(g, dt)
    for _ in range(20):
        solver.step()
    ez = g.interior_view("Ez")
    # 90-degree rotational symmetry of the expanding ring
    np.testing.assert_allclose(ez, ez[::-1, :], atol=1e-9)
    np.testing.assert_allclose(ez, ez.T, atol=1e-9)
