"""Tests for physical constants and laser/plasma conversions."""

import numpy as np
import pytest

from repro import constants as k


def test_fundamental_relations():
    # c^2 = 1/(eps0 mu0)
    assert k.c**2 == pytest.approx(1.0 / (k.eps0 * k.mu0), rel=1e-9)
    assert k.eV == k.q_e
    assert k.GeV == 1e3 * k.MeV


def test_critical_density_800nm():
    # the standard value: n_c(0.8 um) = 1.74e27 m^-3
    nc = k.critical_density(0.8e-6)
    assert nc == pytest.approx(1.742e27, rel=0.01)
    # the paper's solid target: 50 n_c
    assert 50 * nc == pytest.approx(8.7e28, rel=0.02)


def test_plasma_frequency_and_wavelength():
    n0 = 1.0e24
    w = k.plasma_frequency(n0)
    assert w == pytest.approx(5.64e13, rel=0.01)
    lam = k.plasma_wavelength(n0)
    assert lam == pytest.approx(2 * np.pi * k.c / w)


def test_critical_density_inverts_plasma_frequency():
    """n_c is defined by omega_pe(n_c) = omega_laser."""
    lam = 0.8e-6
    nc = k.critical_density(lam)
    omega_laser = 2 * np.pi * k.c / lam
    assert k.plasma_frequency(nc) == pytest.approx(omega_laser, rel=1e-9)


def test_a0_field_roundtrip():
    lam = 0.8e-6
    e = k.a0_to_field(2.5, lam)
    assert k.field_to_a0(e, lam) == pytest.approx(2.5, rel=1e-12)


def test_a0_intensity_standard_value():
    # I(a0=1, 0.8um) ~ 2.14e18 W/cm^2 = 2.14e22 W/m^2
    i = k.a0_to_intensity(1.0, 0.8e-6)
    assert i == pytest.approx(2.14e22, rel=0.02)
