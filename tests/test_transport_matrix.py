"""The cross-transport differential matrix (tentpole acceptance).

Every suite here runs the same scenario through the in-process loopback
transport and through the real one-worker-process-per-rank
multiprocessing transport, and demands *bit-identical* outcomes: fields,
particles, communication counters, halo totals, LB history.  The
equivalence story is the product — the loopback transport is the
verification oracle for the real one, and the real one proves the
loopback's protocol (aggregated pairwise messages, canonical apply
order, count-exact phases) actually survives process boundaries, OS
scheduling and shared-memory hops.

Satellites living here:

* seeded fault-injection fuzz replayed through the multiprocessing
  backend, asserting recovery reproduces the fault-free loopback run to
  the last bit (the resilience layer is load-bearing on a real wire);
* a stress/ordering test with many concurrent tagged messages per rank
  pair, reconciled against ``pair_bytes_for_tag`` and the commlog JSONL
  replay under real process interleaving;
* the killed-worker regression: a blocking recv on a dead peer raises
  :class:`ResilienceError` with full ``src/dst/tag`` context instead of
  hanging;
* the unsupported-feature contract of per-process transports
  (checkpointing, rank-failure faults, device spill buffers, global
  views).
"""

import os

import numpy as np
import pytest

from repro.analysis.commcheck import check_all
from repro.exceptions import (
    CommunicationError,
    ConfigurationError,
    ResilienceError,
)
from repro.observability.commlog import (
    CommLogReplay,
    read_comm_log,
    write_comm_log,
)
from repro.observability.metrics import merge_snapshots
from repro.parallel.comm import SimComm, payload_nbytes
from repro.parallel.distributed import DistributedSimulation
from repro.parallel.mp_transport import (
    MultiprocessingTransport,
    run_distributed_local,
    run_distributed_mp,
    run_spmd,
)
from repro.parallel.transport import (
    LoopbackTransport,
    merge_comm_counters,
    merge_rank_logs,
    pair_bytes_for_tag,
)
from repro.resilience import FaultSchedule, FaultSpec, RecoveryPolicy

from tests.conftest import (
    PARITY_RANKS,
    assert_runs_equal,
    make_langmuir_build,
    make_skewed_lb_build,
)

STEPS = 10


# -- golden parity -----------------------------------------------------------


def test_golden_langmuir_bit_identical():
    """THE acceptance test: the golden scenario on 4 worker processes is
    bit-identical to loopback — every box's fields and particles, the
    merged per-rank comm counters, halo totals and pair-byte matrix —
    and the merged event log replays clean through every protocol
    detector."""
    build = make_langmuir_build(uy=0.3)
    want = run_distributed_local(build, STEPS)
    got = run_distributed_mp(build, STEPS, PARITY_RANKS)
    assert_runs_equal(got, want)
    # per-rank counters really were partial views, not copies
    assert all(
        c.total_messages() < got.counters.total_messages()
        for c in got.rank_counters
    )
    report = check_all(CommLogReplay(got.merged_log, PARITY_RANKS))
    assert report.ok, report.format()
    # the loopback log replays clean too — same audit, same verdict
    report = check_all(CommLogReplay(want.merged_log, PARITY_RANKS))
    assert report.ok, report.format()


def test_dynamic_lb_golden_bit_identical():
    """Dynamic LB on the multiprocessing transport: heuristic costs go
    through a real gather+broadcast reduction, every rank derives the
    same rebalance, and migrated state matches loopback bit for bit."""
    build = make_skewed_lb_build()
    want = run_distributed_local(build, 6)
    assert any(m > 0 for m in want.lb_events)
    got = run_distributed_mp(build, 6, PARITY_RANKS)
    assert_runs_equal(got, want)


def test_merged_metrics_snapshot_matches_loopback():
    """Per-rank observability snapshots merge to the loopback registry:
    summed counters/gauges, max-merged imbalance."""
    from repro.observability import attach_observability

    def observed(base_build):
        def build(transport=None):
            sim = base_build(transport=transport)
            attach_observability(sim)
            return sim

        return build

    build = observed(make_langmuir_build(uy=0.3))
    want = run_distributed_local(build, 6)
    got = run_distributed_mp(build, 6, PARITY_RANKS)
    assert want.rank_metrics[0] is not None
    merged = merge_snapshots([m for m in got.rank_metrics if m is not None])
    ref = want.rank_metrics[0]
    for mid in (
        "comm.messages",
        "comm.collectives",
        "halo.bytes",
        "halo.messages",
        "halo.guard_cells",
        "particles.pushed",
        "particles.live",
    ):
        if mid in ref:
            assert merged.get(mid) == ref[mid], mid
    # every comm pair metric reconciles exactly
    for mid, value in ref.items():
        if mid.startswith("comm.pair_bytes"):
            assert merged.get(mid) == value, mid


# -- satellite: seeded fault-injection fuzz ----------------------------------


@pytest.mark.parametrize("seed", [1, 2, 7])
def test_fuzz_faults_recover_to_fault_free_loopback(seed):
    """Seeded drop/duplicate/corrupt/delay scenarios replayed through
    the multiprocessing transport: the resilience layer (checksums,
    NACK retransmits, probe-driven redelivery, dedup) fully masks every
    injected fault — physics and comm accounting equal the *fault-free*
    loopback run to the last bit."""
    schedule = FaultSchedule.random(
        seed, n_faults=6, max_step=STEPS - 2, n_ranks=PARITY_RANKS
    )
    clean = run_distributed_local(make_langmuir_build(uy=0.3), STEPS)
    got = run_distributed_mp(
        make_langmuir_build(
            uy=0.3, fault_schedule=schedule, recovery=RecoveryPolicy()
        ),
        STEPS,
        PARITY_RANKS,
        merge_logs=False,  # fault events pair up rank-locally only
    )
    assert_runs_equal(got, clean)
    # the faults really fired and really were recovered on the wire
    recovered = sum(sum(r.values()) for r in got.recovery if r)
    assert recovered > 0


@pytest.mark.parametrize(
    "kind", ["drop", "duplicate", "corrupt", "delay"]
)
def test_each_fault_kind_recovers_on_the_wire(kind):
    """One deliberate fault of each kind on halo traffic, pinned to a
    single source rank, recovered across a real process boundary."""
    schedule = FaultSchedule(
        [FaultSpec(kind=kind, step=2, src=1, delay=2)], seed=3
    )
    clean = run_distributed_local(make_langmuir_build(), 5)
    got = run_distributed_mp(
        make_langmuir_build(
            fault_schedule=schedule, recovery=RecoveryPolicy()
        ),
        5,
        PARITY_RANKS,
        merge_logs=False,
    )
    assert_runs_equal(got, clean)
    recovered = sum(sum(r.values()) for r in got.recovery if r)
    assert recovered > 0


# -- satellite: stress / ordering under real interleaving --------------------


def _stress_worker(rank, transport, n_ranks, n_tags, tmpdir):
    comm = SimComm(n_ranks, transport=transport)
    rng = np.random.default_rng(100 + rank)
    for k in range(n_tags):
        for dst in range(n_ranks):
            if dst != rank:
                payload = np.arange(
                    10 * (k + 1), dtype=np.float64
                ) * (rank + 1)
                comm.send(rank, dst, payload, tag=f"stress:{k:02d}")
    # receive in a per-rank shuffled order: arrival interleaving and
    # consumption order both differ from the send order
    want = [
        (src, k)
        for src in range(n_ranks)
        if src != rank
        for k in range(n_tags)
    ]
    rng.shuffle(want)
    total = 0.0
    for src, k in want:
        payload = comm.recv(src, rank, tag=f"stress:{k:02d}")
        assert payload.shape == (10 * (k + 1),)
        total += float(payload.sum())
    transport.sync()
    write_comm_log(comm, os.path.join(tmpdir, f"rank{rank}.commlog"))
    from repro.parallel.transport import CommCounters

    return {
        "counters": CommCounters.from_comm(comm),
        "log": list(comm.log),
        "total": total,
    }


def test_stress_many_tags_reconcile_with_commlog(tmp_path):
    """Many concurrent tagged messages per rank pair, received in
    shuffled order under real process interleaving: the merged per-rank
    counters, the in-memory logs and the commlog JSONL replays all
    reconcile with the bytes that actually crossed the wire."""
    n_ranks, n_tags = 3, 12

    def worker(rank, transport):
        return _stress_worker(rank, transport, n_ranks, n_tags, str(tmp_path))

    results = run_spmd(n_ranks, worker, run_timeout=120.0)
    merged = merge_comm_counters([r["counters"] for r in results])
    # ground truth, computed independently of the comm layer
    expect_pair = {
        (src, dst): sum(
            payload_nbytes(np.arange(10 * (k + 1), dtype=np.float64))
            for k in range(n_tags)
        )
        for src in range(n_ranks)
        for dst in range(n_ranks)
        if src != dst
    }
    assert merged.pair_bytes == expect_pair
    assert merged.total_messages() == n_ranks * (n_ranks - 1) * n_tags
    # per-tag wire traffic: in-memory log == JSONL replay == expectation
    merged_log = merge_rank_logs([r["log"] for r in results], n_ranks)
    replays = [
        read_comm_log(str(tmp_path / f"rank{r}.commlog"))
        for r in range(n_ranks)
    ]
    replay_log = merge_rank_logs([rep.log for rep in replays], n_ranks)
    for k in range(n_tags):
        tag_bytes = payload_nbytes(np.arange(10 * (k + 1), dtype=np.float64))
        expect_tag = {
            pair: tag_bytes for pair in expect_pair
        }
        assert pair_bytes_for_tag(merged_log, f"stress:{k:02d}") == expect_tag
        assert pair_bytes_for_tag(replay_log, f"stress:{k:02d}") == expect_tag
    # every logged send was matched by a logged recv (nothing vanished,
    # nothing was double-delivered)
    sends = [e for e in merged_log if e.kind == "send"]
    recvs = [e for e in merged_log if e.kind == "recv"]
    assert sorted((e.src, e.dst, e.tag, e.nbytes) for e in sends) == sorted(
        (e.src, e.dst, e.tag, e.nbytes) for e in recvs
    )


# -- satellite: a dead worker raises, never hangs ----------------------------


def test_killed_worker_raises_with_message_context():
    """Regression: when a worker dies mid-phase, the peer's blocking
    recv raises ResilienceError naming src/dst/tag after the timeout —
    the run fails loudly instead of hanging forever."""

    def worker(rank, transport):
        comm = SimComm(2, transport=transport)
        if rank == 0:
            # die without sending what rank 1 is waiting for
            os._exit(17)
        comm.recv(0, 1, tag="never-sent")
        return "unreachable"

    with pytest.raises(ResilienceError) as err:
        run_spmd(2, worker, recv_timeout=1.0, run_timeout=60.0)
    msg = str(err.value)
    assert "src=0 dst=1 tag='never-sent'" in msg
    assert "may have died mid-phase" in msg
    # the parent also noticed the corpse itself
    assert "exited with code 17" in msg


def test_sync_timeout_names_missing_ranks():
    """A barrier against a dead peer times out with the missing ranks
    named, instead of deadlocking the surviving workers."""

    def worker(rank, transport):
        if rank == 1:
            os._exit(3)
        transport.sync()

    with pytest.raises(ResilienceError) as err:
        run_spmd(2, worker, recv_timeout=1.0, run_timeout=60.0)
    assert "exited with code 3" in str(err.value)


# -- unsupported-feature contract on per-process transports ------------------


class _FakeBlockingTransport(LoopbackTransport):
    """Loopback mechanics with the per-process contract flags set."""

    kind = "fake-blocking"
    blocking = True

    def __init__(self, local_rank=0):
        super().__init__()
        self.local_rank = local_rank


def _build_sim(**kwargs):
    return DistributedSimulation(
        (8, 8), (0.0, 0.0), (1.0, 1.0), n_ranks=2, max_grid_size=4,
        transport=_FakeBlockingTransport(), **kwargs
    )


def test_checkpointing_rejected_on_blocking_transport():
    with pytest.raises(ConfigurationError, match="checkpoint"):
        _build_sim(checkpoint_interval=2)
    with pytest.raises(ConfigurationError, match="checkpoint"):
        _build_sim(checkpoint_dir="/tmp/nope")


def test_rank_failure_faults_rejected_on_blocking_transport():
    schedule = FaultSchedule([FaultSpec(kind="rank_failure", step=1, rank=1)])
    with pytest.raises(ConfigurationError, match="rank_failure"):
        _build_sim(fault_schedule=schedule, recovery=RecoveryPolicy())


def test_device_buffers_rejected_on_blocking_transport():
    with pytest.raises(CommunicationError, match="device"):
        SimComm(2, device_buffer_bytes=1 << 20,
                transport=_FakeBlockingTransport())


def test_global_views_rejected_on_spmd_endpoint():
    sim = _build_sim()
    with pytest.raises(ConfigurationError, match="run_distributed_mp"):
        sim.global_field_view("Ex")
    with pytest.raises(ConfigurationError, match="run_distributed_mp"):
        sim.field_energy()


def test_spmd_endpoint_cannot_send_as_another_rank():
    transport = MultiprocessingTransport(0, 2, [None, None])
    transport._inboxes = [None, None]
    with pytest.raises(CommunicationError, match="only speaks for itself"):
        transport.deliver((1, 1, "t"), (1, 0, b"", None, None))
