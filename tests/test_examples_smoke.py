"""Smoke tests: the runnable examples execute end-to-end.

The heavy examples (LWFA, hybrid target, ionization) are exercised by the
scenario tests and benches at reduced size; here the fast examples run
as-is so a broken public API surfaces immediately.
"""

import contextlib
import io
import runpy
import sys

import pytest

FAST_EXAMPLES = [
    "examples/quickstart.py",
    "examples/mesh_refinement_demo.py",
    "examples/scaling_study.py",
    "examples/boosted_frame_study.py",
    "examples/distributed_demo.py",
    "examples/fault_injection_demo.py",
]


@pytest.mark.parametrize("path", FAST_EXAMPLES)
def test_example_runs(path):
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        runpy.run_path(path, run_name="__main__")
    out = buf.getvalue()
    assert len(out) > 100  # it narrated something


def test_quickstart_measures_plasma_frequency():
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = buf.getvalue()
    assert "relative error" in out
    # parse the printed relative error and hold it to the physics bound
    line = next(l for l in out.splitlines() if "relative error" in l)
    err = float(line.split(":")[1].strip().rstrip("%")) / 100.0
    assert err < 0.1


def test_mr_demo_reports_clean_escape():
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        runpy.run_path("examples/mesh_refinement_demo.py", run_name="__main__")
    out = buf.getvalue()
    assert "residual fine energy" in out
    assert "no spurious reflection" in out


def test_fault_demo_reports_bit_identical_recovery():
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        runpy.run_path("examples/fault_injection_demo.py", run_name="__main__")
    out = buf.getvalue()
    assert "bit-identical" in out
    assert "clean" in out  # the commcheck replay line


def test_distributed_demo_reports_machine_precision():
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        runpy.run_path("examples/distributed_demo.py", run_name="__main__")
    out = buf.getvalue()
    line = next(l for l in out.splitlines() if "Ex_dist - Ex_mono" in l)
    err = float(line.split(":")[1].split()[0])
    assert err < 1e-9
