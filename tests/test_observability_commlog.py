"""Comm-log persistence: roundtrip fidelity and format validation."""

import numpy as np
import pytest

from repro.analysis.commcheck import check_all
from repro.exceptions import AnalysisError
from repro.observability.commlog import (
    LOG_FORMAT_VERSION,
    CommLogReplay,
    read_comm_log,
    write_comm_log,
)
from repro.parallel.comm import CommEvent, SimComm


def sample_comm():
    comm = SimComm(3)
    comm.begin_phase("halo:fold", n_messages=2)
    comm.send(0, 1, np.zeros(4, dtype=np.float64), tag="halo:fold")
    comm.send(1, 2, np.zeros(8, dtype=np.float64), tag="halo:fold")
    comm.recv(0, 1, tag="halo:fold")
    comm.recv(1, 2, tag="halo:fold")
    comm.record_apply("halo:fold", 0, nbytes=32)
    comm.record_apply("halo:fold", 1, nbytes=64)
    comm.end_phase("halo:fold")
    comm.allreduce_sum(np.ones(2))
    comm.barrier()
    return comm


def test_roundtrip_preserves_every_event(tmp_path):
    comm = sample_comm()
    path = str(tmp_path / "run.commlog.jsonl")
    n = write_comm_log(comm, path)
    assert n == len(comm.log)
    replay = read_comm_log(path)
    assert replay.n_ranks == comm.n_ranks
    assert len(replay) == len(comm.log)
    assert replay.log == comm.log  # CommEvent is a frozen dataclass
    assert all(isinstance(ev, CommEvent) for ev in replay.log)


def test_replay_feeds_the_checkers(tmp_path):
    comm = sample_comm()
    path = str(tmp_path / "run.commlog.jsonl")
    write_comm_log(comm, path)
    report = check_all(read_comm_log(path))
    assert report.ok, report.format()
    assert report.n_ranks == 3


def test_replay_object_is_writable_again(tmp_path):
    comm = sample_comm()
    first = str(tmp_path / "a.jsonl")
    second = str(tmp_path / "b.jsonl")
    write_comm_log(comm, first)
    write_comm_log(read_comm_log(first), second)  # duck-typed writer
    assert read_comm_log(second).log == comm.log


def test_detail_field_survives_and_defaults(tmp_path):
    comm = sample_comm()
    path = str(tmp_path / "run.commlog.jsonl")
    write_comm_log(comm, path)
    replay = read_comm_log(path)
    applies = [ev for ev in replay.log if ev.kind == "apply"]
    assert [ev.detail for ev in applies] == [0, 1]
    begin = [ev for ev in replay.log if ev.kind == "phase_begin"][0]
    assert begin.detail == 2  # declared message count
    sends = [ev for ev in replay.log if ev.kind == "send"]
    assert all(ev.detail == 0 for ev in sends)


def test_rejects_non_comm_logs(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind": "span", "version": 1}\n')
    with pytest.raises(AnalysisError, match="not a comm log"):
        read_comm_log(str(path))


def test_rejects_future_versions(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(
        '{"kind": "comm_log", "version": %d, "n_ranks": 2}\n'
        % (LOG_FORMAT_VERSION + 1)
    )
    with pytest.raises(AnalysisError, match="version"):
        read_comm_log(str(path))


def test_rejects_malformed_events(tmp_path):
    path = tmp_path / "mangled.jsonl"
    path.write_text(
        '{"kind": "comm_log", "version": 1, "n_ranks": 2}\n'
        '{"seq": 0, "kind": "send"}\n'
    )
    with pytest.raises(AnalysisError, match="malformed comm-log event"):
        read_comm_log(str(path))


def test_distributed_run_log_replays_clean(tmp_path):
    """End to end: a real distributed step's log roundtrips and audits."""
    from repro.constants import m_e, plasma_wavelength, q_e
    from repro.parallel.distributed import DistributedSimulation
    from repro.particles.injection import UniformProfile
    from repro.particles.species import Species

    n0 = 1e24
    length = plasma_wavelength(n0)
    sim = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length), n_ranks=4, max_grid_size=8
    )
    sim.add_species(
        Species("electrons", charge=-q_e, mass=m_e, ndim=2),
        profile=UniformProfile(n0), ppc=(1, 1), rng_seed=5,
    )
    sim.step(2)
    path = str(tmp_path / "dist.commlog.jsonl")
    write_comm_log(sim.comm, path)
    replay = read_comm_log(path)
    kinds = {ev.kind for ev in replay.log}
    assert {"phase_begin", "phase_end", "apply", "send", "recv"} <= kinds
    report = check_all(replay)
    assert report.ok, report.format()
