"""Tests and property tests for particle splitting / merging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.grid.yee import YeeGrid
from repro.particles.species import Species
from repro.particles.splitting import merge_particles, split_particles


def make_species(n=20, ndim=2, seed=1):
    s = Species("e", ndim=ndim)
    rng = np.random.default_rng(seed)
    s.add_particles(
        rng.uniform(1.0, 7.0, size=(n, ndim)),
        rng.normal(0, 0.5, size=(n, 3)),
        rng.uniform(0.5, 2.0, size=n),
    )
    return s


def test_split_conserves_everything():
    s = make_species()
    w0 = s.weights.sum()
    p0 = (s.weights[:, None] * s.momenta).sum(axis=0)
    ke0 = s.kinetic_energy()
    centroid0 = (s.weights[:, None] * s.positions).sum(axis=0)
    added = split_particles(s, np.ones(s.n, dtype=bool), n_children=4,
                            position_spread=0.01)
    assert added == 20 * 3
    assert s.n == 80
    assert s.weights.sum() == pytest.approx(w0)
    np.testing.assert_allclose(
        (s.weights[:, None] * s.momenta).sum(axis=0), p0, rtol=1e-12
    )
    assert s.kinetic_energy() == pytest.approx(ke0)
    np.testing.assert_allclose(
        (s.weights[:, None] * s.positions).sum(axis=0), centroid0, rtol=1e-9
    )


def test_split_selected_only():
    s = make_species(n=10)
    mask = np.zeros(10, dtype=bool)
    mask[:3] = True
    added = split_particles(s, mask, n_children=2)
    assert added == 3
    assert s.n == 13


def test_split_odd_children():
    s = make_species(n=5)
    split_particles(s, np.ones(5, dtype=bool), n_children=3, position_spread=0.02)
    assert s.n == 15


def test_split_validation():
    s = make_species(n=4)
    with pytest.raises(ConfigurationError):
        split_particles(s, np.ones(4, dtype=bool), n_children=1)
    with pytest.raises(ConfigurationError):
        split_particles(s, np.ones(3, dtype=bool))


def test_split_empty_mask_noop():
    s = make_species(n=4)
    assert split_particles(s, np.zeros(4, dtype=bool)) == 0
    assert s.n == 4


def grid_for(ndim=2, n=8):
    return YeeGrid((n,) * ndim, (0.0,) * ndim, (float(n),) * ndim, guards=2)


def test_merge_conserves_charge_and_momentum():
    s = Species("e", ndim=2)
    # two clusters of identical-momentum particles in the same cell
    pos = np.concatenate([np.full((6, 2), 3.2), np.full((6, 2), 5.7)])
    mom = np.concatenate([np.tile([1.0, 0.0, 0.0], (6, 1)),
                          np.tile([-0.5, 0.2, 0.0], (6, 1))])
    w = np.ones(12)
    s.add_particles(pos, mom, w)
    w0 = s.weights.sum()
    p0 = (s.weights[:, None] * s.momenta).sum(axis=0)
    removed, loss = merge_particles(s, grid_for(), tile_cells=1)
    assert removed > 0
    assert s.n < 12
    assert s.weights.sum() == pytest.approx(w0)
    np.testing.assert_allclose(
        (s.weights[:, None] * s.momenta).sum(axis=0), p0, rtol=1e-12
    )
    # identical momenta within groups: zero energy loss
    assert loss == pytest.approx(0.0, abs=1e-12)


def test_merge_respects_momentum_bins():
    """Counter-streaming beams in the same cell must NOT merge into a
    zero-momentum blob."""
    s = Species("e", ndim=2)
    pos = np.full((8, 2), 3.3)
    mom = np.concatenate([np.tile([2.0, 0, 0], (4, 1)), np.tile([-2.0, 0, 0], (4, 1))])
    s.add_particles(pos, mom, np.ones(8))
    removed, loss = merge_particles(s, grid_for(), tile_cells=1, momentum_bins=2)
    # merging happened within each beam, not across
    assert s.n == 2
    moms = sorted(s.momenta[:, 0])
    assert moms[0] == pytest.approx(-2.0)
    assert moms[1] == pytest.approx(2.0)


def test_merge_small_population_noop():
    s = make_species(n=1)
    removed, loss = merge_particles(s, grid_for())
    assert removed == 0 and s.n == 1


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_merge_property_conservation(seed):
    rng = np.random.default_rng(seed)
    s = Species("e", ndim=2)
    n = 40
    # clustered positions to guarantee merge candidates
    base = rng.uniform(1.0, 6.0, size=(4, 2))
    pos = np.repeat(base, 10, axis=0) + rng.normal(0, 0.05, size=(n, 2))
    mom = rng.normal(0, 0.1, size=(n, 3))
    w = rng.uniform(0.5, 2.0, size=n)
    s.add_particles(np.clip(pos, 0.1, 7.9), mom, w)
    w0 = s.weights.sum()
    p0 = (s.weights[:, None] * s.momenta).sum(axis=0)
    removed, loss = merge_particles(s, grid_for(), tile_cells=1)
    assert s.weights.sum() == pytest.approx(w0, rel=1e-12)
    np.testing.assert_allclose(
        (s.weights[:, None] * s.momenta).sum(axis=0), p0, rtol=1e-9, atol=1e-12
    )
    assert 0.0 <= loss < 0.5


def test_split_then_merge_roundtrip():
    """Splitting then merging returns to a similar population size with
    all invariants intact."""
    s = make_species(n=16, seed=3)
    w0 = s.weights.sum()
    split_particles(s, np.ones(s.n, dtype=bool), n_children=4,
                    position_spread=0.01)
    assert s.n == 64
    merge_particles(s, grid_for(), tile_cells=1, max_group=4)
    assert s.n <= 32
    assert s.weights.sum() == pytest.approx(w0)
