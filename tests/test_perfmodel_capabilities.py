"""Tests for the Table I capability matrix and its implementation map."""

from repro.perfmodel.capabilities import (
    ALL_CODES,
    CAPABILITY_TABLE,
    REPRO_IMPLEMENTATIONS,
    repro_feature_map,
)


def test_table1_contents():
    assert CAPABILITY_TABLE["Mesh refinement"]["codes"] == {"WarpX"}
    assert CAPABILITY_TABLE["Dyn. LB for CPU & GPU"]["codes"] == {"WarpX"}
    assert "VPIC" not in CAPABILITY_TABLE["High-order particle shape"]["codes"]
    assert "VPIC" in CAPABILITY_TABLE["Single-Source CPU & GPU"]["codes"]
    assert not CAPABILITY_TABLE["Boosted frame"]["essential"]


def test_warpx_has_every_capability():
    for cap, info in CAPABILITY_TABLE.items():
        assert "WarpX" in info["codes"], cap


def test_every_essential_capability_is_implemented():
    """The hard gate: every starred Table I capability resolves to a live
    attribute of this repository."""
    rows = repro_feature_map()
    for row in rows:
        if row["essential"]:
            assert row["resolved"], row["capability"]
            assert row["implemented_by"] is not None


def test_nonessential_capabilities_also_implemented():
    """The two extension rows of Table I (not needed for the paper's runs
    but discussed in its final section) are implemented here too."""
    rows = {r["capability"]: r for r in repro_feature_map()}
    assert rows["Boosted frame"]["resolved"]
    assert rows["PSATD Maxwell field solver"]["resolved"]


def test_all_codes_list():
    assert len(ALL_CODES) == 7
    for cap, info in CAPABILITY_TABLE.items():
        assert set(info["codes"]) <= set(ALL_CODES)
