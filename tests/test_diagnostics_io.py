"""Checkpoint/restart tests: a restarted run continues bit-for-bit."""

import numpy as np
import pytest

from repro.constants import c, m_e, plasma_wavelength, q_e, um, fs
from repro.core.moving_window import MovingWindow
from repro.core.mr_simulation import MRSimulation
from repro.core.simulation import Simulation
from repro.diagnostics.io import (
    load_checkpoint,
    load_snapshot,
    save_checkpoint,
    save_snapshot,
)
from repro.exceptions import ConfigurationError
from repro.grid.maxwell import cfl_dt
from repro.grid.yee import YeeGrid
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def build_langmuir(mr=False):
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((48,), (0.0,), (length,), guards=4)
    if mr:
        dt = cfl_dt((length / 48 / 2,), 0.9)
        sim = MRSimulation(g, dt=dt, shape_order=2, smoothing_passes=0)
    else:
        sim = Simulation(g, shape_order=2, smoothing_passes=0)
    e = Species("e", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=8)
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    if mr:
        sim.add_patch((12,), (36,), ratio=2)
    return sim, e


@pytest.mark.parametrize("mr", [False, True])
def test_checkpoint_restart_bitwise(tmp_path, mr):
    """run 10 + 10 steps == run 10, checkpoint, restore elsewhere, run 10."""
    path = str(tmp_path / "ckpt.npz")
    sim_a, e_a = build_langmuir(mr)
    sim_a.step(10)
    save_checkpoint(sim_a, path)
    sim_a.step(10)

    sim_b, e_b = build_langmuir(mr)
    load_checkpoint(sim_b, path)
    assert sim_b.step_count == 10
    sim_b.step(10)

    np.testing.assert_array_equal(
        sim_a.grid.fields["Ex"], sim_b.grid.fields["Ex"]
    )
    np.testing.assert_array_equal(e_a.positions, e_b.positions)
    np.testing.assert_array_equal(e_a.momenta, e_b.momenta)
    if mr:
        np.testing.assert_array_equal(
            sim_a.patches[0].fine.fields["Ey"],
            sim_b.patches[0].fine.fields["Ey"],
        )


def test_checkpoint_restores_moving_window_state(tmp_path):
    path = str(tmp_path / "ckpt.npz")
    g = YeeGrid((64,), (0.0,), (64 * um,), guards=4)
    sim = Simulation(g, boundaries="damped")
    e = Species("e", ndim=1)
    sim.add_species(e, profile=UniformProfile(1e24), ppc=1,
                    continuous_injection=True)
    sim.set_moving_window(MovingWindow(speed=c, start_time=0.0))
    sim.step(15)
    save_checkpoint(sim, path)
    lo_a = sim.grid.lo[0]

    sim2 = Simulation(YeeGrid((64,), (0.0,), (64 * um,), guards=4),
                      boundaries="damped")
    e2 = Species("e", ndim=1)
    sim2.add_species(e2, profile=UniformProfile(1e24), ppc=1,
                     continuous_injection=True)
    sim2.set_moving_window(MovingWindow(speed=c, start_time=0.0))
    load_checkpoint(sim2, path)
    assert sim2.grid.lo[0] == lo_a
    assert sim2.moving_window.cells_shifted == sim.moving_window.cells_shifted
    sim2.step(5)
    assert np.all(np.isfinite(sim2.grid.fields["Ey"]))


def test_checkpoint_mismatch_raises(tmp_path):
    path = str(tmp_path / "ckpt.npz")
    sim, _ = build_langmuir(mr=True)
    save_checkpoint(sim, path)
    plain, _ = build_langmuir(mr=False)
    with pytest.raises(ConfigurationError):
        load_checkpoint(plain, path)  # patch count mismatch
    with pytest.raises(ConfigurationError):
        load_checkpoint(plain, str(tmp_path / "missing.npz"))


def test_checkpoint_missing_species_raises(tmp_path):
    path = str(tmp_path / "ckpt.npz")
    sim, _ = build_langmuir()
    save_checkpoint(sim, path)
    g = YeeGrid((48,), (0.0,), (1.0,), guards=4)
    other = Simulation(g, smoothing_passes=0)
    other.add_species(Species("ions", ndim=1))
    with pytest.raises(ConfigurationError):
        load_checkpoint(other, path)


def test_snapshot_roundtrip(tmp_path):
    path = str(tmp_path / "snap.npz")
    sim, e = build_langmuir()
    sim.step(5)
    save_snapshot(sim.grid, {"e": e}, path)
    data = load_snapshot(path)
    np.testing.assert_array_equal(data["field/Ex"], sim.grid.interior_view("Ex"))
    np.testing.assert_array_equal(data["species/e/positions"], e.positions)
    assert data["lo"][0] == 0.0
