"""Runtime sanitizer tests: env gating, the three invariants as unit
checks, and end-to-end trips inside real simulation runs."""

import numpy as np
import pytest

from repro.analysis.sanitize import Sanitizer
from repro.constants import m_e, plasma_wavelength, q_e
from repro.core.mr_simulation import MRSimulation
from repro.core.simulation import Simulation
from repro.exceptions import ReproError, SanitizerError
from repro.grid.boundary import apply_periodic
from repro.grid.yee import YeeGrid
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


# -- env gating --------------------------------------------------------------

@pytest.mark.parametrize("value", ["", "0", "false", "off", "no", "OFF"])
def test_from_env_disabled_values(value):
    assert Sanitizer.from_env({"REPRO_SANITIZE": value}) is None


def test_from_env_unset_is_disabled():
    assert Sanitizer.from_env({}) is None


@pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
def test_from_env_enabled_values(value):
    assert isinstance(Sanitizer.from_env({"REPRO_SANITIZE": value}), Sanitizer)


def test_simulation_picks_up_env(monkeypatch):
    g = YeeGrid((16,), (0.0,), (1.0,), guards=4)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert Simulation(g).sanitizer is None
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert isinstance(Simulation(g).sanitizer, Sanitizer)


def test_sanitizer_error_is_repro_error():
    assert issubclass(SanitizerError, ReproError)


# -- SAN001: finite fields ---------------------------------------------------

def test_san001_passes_on_finite_grid():
    g = YeeGrid((8, 8), (0.0, 0.0), (1.0, 1.0), guards=2)
    Sanitizer().check_fields_finite(g, step=0)


def test_san001_names_step_and_field():
    g = YeeGrid((8, 8), (0.0, 0.0), (1.0, 1.0), guards=2)
    g.fields["By"][4, 4] = np.inf
    with pytest.raises(SanitizerError) as excinfo:
        Sanitizer().check_fields_finite(g, step=7)
    msg = str(excinfo.value)
    assert "SAN001" in msg and "step 7" in msg and "By" in msg


# -- SAN002: particles in domain ---------------------------------------------

def test_san002_accepts_interior_and_boundary_particles():
    pos = np.array([[0.0], [0.5], [1.0]])  # hi is inclusive (periodic wrap)
    Sanitizer().check_particles_in_domain("e", pos, (0.0,), (1.0,), step=0)


def test_san002_names_species_axis_and_count():
    pos = np.array([[0.5, 0.5], [0.5, 1.5], [0.5, -0.2]])
    with pytest.raises(SanitizerError) as excinfo:
        Sanitizer().check_particles_in_domain(
            "ions", pos, (0.0, 0.0), (1.0, 1.0), step=3
        )
    msg = str(excinfo.value)
    assert "SAN002" in msg and "step 3" in msg
    assert "'ions'" in msg and "axis 1" in msg and "2 particle(s)" in msg


# -- SAN003: guard-cell write discipline -------------------------------------

def guarded_periodic_grid():
    g = YeeGrid((16,), (0.0,), (1.0,), guards=4)
    rng = np.random.default_rng(0)
    for comp in g.fields:
        g.fields[comp][:] = rng.normal(size=g.fields[comp].shape)
    apply_periodic(g, axis=0)
    return g


def test_san003_passes_after_periodic_exchange():
    g = guarded_periodic_grid()
    Sanitizer().check_guard_consistency(g, axis=0, step=0)


def test_san003_catches_guard_scribble():
    g = guarded_periodic_grid()
    g.fields["Ez"][0] += 1.0  # a kernel wrote into a low guard cell
    with pytest.raises(SanitizerError) as excinfo:
        Sanitizer().check_guard_consistency(g, axis=0, step=5)
    msg = str(excinfo.value)
    assert "SAN003" in msg and "step 5" in msg and "Ez" in msg


# -- end-to-end: sanitizers trip inside real runs ----------------------------

def langmuir_sim(n_cells=32, ppc=4):
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((n_cells,), (0.0,), (length,), guards=4)
    sim = Simulation(g, shape_order=2, boundaries="periodic")
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=ppc)
    return sim


def test_nan_injected_into_ex_midrun_raises_with_step_and_field(monkeypatch):
    """The ISSUE's canonical scenario: a NaN planted in Ex at step 3 of a
    live run must surface as a SanitizerError naming the step and field."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = langmuir_sim()
    assert sim.sanitizer is not None

    def inject(s):
        if s.step_count == 3:  # callbacks run after the counter increments
            s.grid.fields["Ex"][10] = np.nan

    sim.callbacks.append(inject)
    sim.step(2)
    with pytest.raises(SanitizerError) as excinfo:
        sim.step()
    msg = str(excinfo.value)
    assert "SAN001" in msg and "step 3" in msg and "Ex" in msg


def test_escaped_particle_midrun_raises(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = langmuir_sim()
    electrons = sim.entries["electrons"].species

    def eject(s):
        if s.step_count == 1:
            electrons.positions[0, 0] = s.grid.hi[0] + 10.0

    sim.callbacks.append(eject)
    with pytest.raises(SanitizerError) as excinfo:
        sim.step(3)
    msg = str(excinfo.value)
    assert "SAN002" in msg and "'electrons'" in msg


def test_guard_scribble_midrun_raises(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sim = langmuir_sim()

    def scribble(s):
        if s.step_count == 1:
            s.grid.fields["Ey"][0] += 1.0  # low guard, after the exchange

    sim.callbacks.append(scribble)
    with pytest.raises(SanitizerError) as excinfo:
        sim.step(3)
    assert "SAN003" in str(excinfo.value)


def test_disabled_sanitizer_lets_nan_through(monkeypatch):
    """Without REPRO_SANITIZE the checks really are off: the NaN survives
    the injection step unchallenged and only surfaces later as a raw
    ValueError deep inside the deposition kernel — exactly the
    hard-to-diagnose failure the sanitizer exists to front-run."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    sim = langmuir_sim()
    assert sim.sanitizer is None
    sim.step(2)
    sim.grid.fields["Ex"][10] = np.nan
    with pytest.raises(ValueError) as excinfo:
        sim.step(2)  # gathered NaN poisons the push, deposit blows up
    assert not isinstance(excinfo.value, SanitizerError)


def test_mr_simulation_checks_patch_fields(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((32,), (0.0,), (length,), guards=4)
    from repro.grid.maxwell import cfl_dt

    sim = MRSimulation(g, dt=cfl_dt((length / 64,), 0.9), shape_order=2)
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=4)
    sim.add_patch((8,), (24,), ratio=2)
    sim.step(2)

    def poison(s):
        s.patches[0].fine.fields["Bz"][5] = np.inf

    sim.callbacks.append(poison)
    with pytest.raises(SanitizerError) as excinfo:
        sim.step()
    msg = str(excinfo.value)
    assert "SAN001" in msg and "Bz" in msg and "patch 0" in msg and "fine" in msg


# -- SAN005: gather/deposit stencils stay inside the padded arrays -----------

def test_san005_unit_check_passes_in_range():
    base = [np.array([0, 2, 5]), np.array([1, 3, 4])]
    Sanitizer().check_stencil_bounds("gather_fields", "Ex", base, 4, (9, 8))


def test_san005_unit_check_names_kernel_component_axis():
    base = [np.array([2]), np.array([-1])]
    with pytest.raises(SanitizerError) as excinfo:
        Sanitizer().check_stencil_bounds("deposit_charge", "rho", base, 4, (9, 9))
    msg = str(excinfo.value)
    assert "SAN005" in msg and "deposit_charge" in msg and "rho" in msg
    assert "axis 1" in msg


def test_san005_trips_on_gather_outside_padding(monkeypatch):
    """Regression: the flat-address arithmetic wraps a negative base index
    to the far end of the raveled array, so an out-of-range gather used to
    read silently from the wrong cells instead of failing."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    from repro.particles.gather import gather_fields

    g = YeeGrid((8,), (0.0,), (8.0,), guards=1)
    pos = np.array([[-3.5]])  # order-3 stencil reaches past the single guard
    with pytest.raises(SanitizerError, match="SAN005"):
        gather_fields(g, pos, order=3)


def test_san005_trips_on_deposit_outside_padding(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    from repro.particles.deposit import deposit_charge, deposit_charge_tiled

    g = YeeGrid((8,), (0.0,), (8.0,), guards=1)
    pos = np.array([[11.5]])
    with pytest.raises(SanitizerError, match="SAN005"):
        deposit_charge(g, pos, np.ones(1), -q_e, order=3)
    with pytest.raises(SanitizerError, match="SAN005"):
        deposit_charge_tiled(g, pos, np.ones(1), -q_e, order=3)


def test_san005_silent_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    from repro.particles.gather import gather_fields

    g = YeeGrid((8,), (0.0,), (8.0,), guards=1)
    e, b = gather_fields(g, np.array([[-3.5]]), order=3)  # wraps, no raise
    assert e.shape == (1, 3)
