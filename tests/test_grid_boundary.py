"""Tests for periodic / conductor / damping boundary handling."""

import numpy as np
import pytest

from repro.constants import c
from repro.grid.boundary import (
    accumulate_periodic_sources,
    apply_conductor,
    apply_damping,
    apply_periodic,
    damping_profile,
)
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.yee import YeeGrid


def test_periodic_guard_fill_nodal():
    g = YeeGrid((8,), (0.0,), (8.0,), guards=2)
    g.Ey[...] = 0.0
    g.interior_view("Ey")[...] = np.arange(9.0)
    # node 8 is the same physical point as node 0
    apply_periodic(g, 0)
    arr = g.Ey
    assert arr[g.guards + 8] == arr[g.guards]
    np.testing.assert_allclose(arr[:2], arr[8:10])
    np.testing.assert_allclose(arr[11:], arr[3:5])


def test_periodic_guard_fill_staggered():
    g = YeeGrid((8,), (0.0,), (8.0,), guards=2)
    g.interior_view("Ex")[...] = np.arange(8.0)
    apply_periodic(g, 0)
    arr = g.Ex
    np.testing.assert_allclose(arr[:2], arr[8:10])
    np.testing.assert_allclose(arr[10:], arr[2:5])


def test_accumulate_periodic_sources_conserves_total():
    g = YeeGrid((8,), (0.0,), (8.0,), guards=2)
    rng = np.random.default_rng(0)
    g.fields["rho"][...] = rng.normal(size=g.shape)
    # every array entry (guards and the duplicated nodal plane included)
    # is a deposit belonging to some physical node
    total_before = g.fields["rho"].sum()
    accumulate_periodic_sources(g, 0)
    rho = g.fields["rho"]
    assert np.all(rho[:2] == 0.0)
    valid = rho[g.guards : g.guards + 9]
    # first and last valid nodes are the same physical point
    assert valid[0] == pytest.approx(valid[-1])
    assert valid[:-1].sum() == pytest.approx(total_before)


def test_conductor_reflects_pulse():
    """A pulse reflects from a PEC wall and comes back inverted."""
    n = 256
    g = YeeGrid((n,), (0.0,), (1.0,), guards=3)
    x = g.axis_coords(0, "Ey")
    x_b = g.axis_coords(0, "Bz")
    pulse = lambda s: np.exp(-((s - 0.7) ** 2) / (2 * 0.02**2))
    g.interior_view("Ey")[...] = pulse(x)
    g.interior_view("Bz")[...] = pulse(x_b) / c  # right-going
    dt = cfl_dt(g.dx, 0.9)
    solver = MaxwellSolver(g, dt)
    steps = int(0.55 / (c * dt))  # hits the x=1 wall and returns
    for _ in range(steps):
        apply_conductor(g, 0)
        solver.step()
    ey = g.interior_view("Ey")
    peak = np.argmax(np.abs(ey))
    assert ey[peak] < 0  # inverted on reflection from PEC
    assert abs(np.abs(ey).max() - 1.0) < 0.1  # amplitude preserved


def test_damping_profile_monotone():
    f = damping_profile(8, strength=0.05)
    assert np.all(np.diff(f) > 0)
    assert f[-1] < 1.0
    assert f[0] == pytest.approx(0.95)


def test_damping_layer_absorbs_energy():
    n = 128
    g = YeeGrid((n,), (0.0,), (1.0,), guards=3)
    x = g.axis_coords(0, "Ey")
    x_b = g.axis_coords(0, "Bz")
    pulse = lambda s: np.exp(-((s - 0.5) ** 2) / (2 * 0.03**2))
    g.interior_view("Ey")[...] = pulse(x)
    g.interior_view("Bz")[...] = pulse(x_b) / c
    dt = cfl_dt(g.dx, 0.9)
    solver = MaxwellSolver(g, dt)
    e0 = g.field_energy()
    steps = int(2.5 / (c * dt))
    for _ in range(steps):
        apply_damping(g, 0, n_layer=32, strength=0.03)
        solver.step()
    # graded damping is the cheap absorber: much weaker than the PML but
    # still removes the bulk of the outgoing energy
    assert g.field_energy() < 0.1 * e0
