"""Tests for the PSATD spectral Maxwell solver."""

import numpy as np
import pytest

from repro.constants import c, eps0
from repro.exceptions import ConfigurationError
from repro.grid.boundary import apply_periodic
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.psatd import PSATDMaxwellSolver, galilean_coefficients
from repro.grid.yee import FIELD_COMPONENTS, STAGGER, YeeGrid


def plane_wave_grid(n=32, wavelengths=4):
    length = 1.0
    g = YeeGrid((n,), (0.0,), (length,), guards=2)
    k = 2 * np.pi * wavelengths / length
    x_e = g.axis_coords(0, "Ey")
    x_b = g.axis_coords(0, "Bz")
    g.interior_view("Ey")[...] = np.sin(k * x_e)
    g.interior_view("Bz")[...] = np.sin(k * x_b) / c
    apply_periodic(g, 0)
    return g, k


def test_vacuum_plane_wave_exact_dispersion():
    """PSATD advects a periodic plane wave at exactly c — even at only 8
    points per wavelength and a time step far beyond the FDTD CFL."""
    g, k = plane_wave_grid(n=32, wavelengths=4)
    dt = 3.0 * cfl_dt(g.dx)  # super-CFL: illegal for FDTD
    solver = PSATDMaxwellSolver(g, dt)
    steps = 40
    for _ in range(steps):
        solver.step()
    shift = c * steps * dt
    x_e = g.axis_coords(0, "Ey")
    expected = np.sin(k * (x_e - shift))
    np.testing.assert_allclose(g.interior_view("Ey"), expected, atol=1e-10)


def test_psatd_beats_fdtd_dispersion():
    """At coarse resolution the FDTD wave lags; the PSATD wave does not."""

    def run(solver_cls, **kw):
        g, k = plane_wave_grid(n=24, wavelengths=3)
        dt = cfl_dt(g.dx, 0.9)
        solver = solver_cls(g, dt, **kw)
        steps = 120
        for _ in range(steps):
            if solver_cls is MaxwellSolver:
                apply_periodic(g, 0)
            solver.step()
        shift = c * steps * dt
        x_e = g.axis_coords(0, "Ey")
        expected = np.sin(k * (x_e - shift))
        return np.max(np.abs(g.interior_view("Ey") - expected))

    err_fdtd = run(MaxwellSolver)
    err_psatd = run(PSATDMaxwellSolver)
    assert err_psatd < 1e-9
    assert err_fdtd > 100 * err_psatd


def test_energy_conserved_exactly_in_vacuum():
    g, _ = plane_wave_grid(n=32)
    solver = PSATDMaxwellSolver(g, dt=2.0 * cfl_dt(g.dx))
    e0 = g.field_energy()
    for _ in range(100):
        solver.step()
    assert g.field_energy() == pytest.approx(e0, rel=1e-12)


def test_uniform_current_drives_e_like_fdtd():
    """The k=0 mode reduces to dE/dt = -J/eps0 exactly."""
    g = YeeGrid((16,), (0.0,), (16.0,), guards=2)
    dt = 1e-10
    solver = PSATDMaxwellSolver(g, dt)
    g.Jy[...] = 3.0
    solver.step()
    np.testing.assert_allclose(
        g.interior_view("Ey"), -3.0 * dt / eps0, rtol=1e-12
    )


def test_2d_pulse_isotropic():
    n = 32
    g = YeeGrid((n, n), (0, 0), (1.0, 1.0), guards=2)
    x = g.axis_coords(0, "Ez")
    y = g.axis_coords(1, "Ez")
    r2 = (x[:, None] - 0.5) ** 2 + (y[None, :] - 0.5) ** 2
    g.interior_view("Ez")[...] = np.exp(-r2 / 0.005)
    apply_periodic(g, 0)
    apply_periodic(g, 1)
    solver = PSATDMaxwellSolver(g, cfl_dt(g.dx, 0.9))
    for _ in range(15):
        solver.step()
    ez = g.interior_view("Ez")
    np.testing.assert_allclose(ez, ez.T, atol=1e-12)
    np.testing.assert_allclose(ez, ez[::-1, :], atol=1e-9)


def test_static_field_is_steady():
    g = YeeGrid((16, 16), (0, 0), (1, 1), guards=2)
    g.Bz[...] = 2.0
    solver = PSATDMaxwellSolver(g, dt=1e-9)
    for _ in range(10):
        solver.step()
    np.testing.assert_allclose(g.interior_view("Bz"), 2.0, rtol=1e-12)


def test_half_push_interface_rejected():
    g = YeeGrid((8,), (0.0,), (1.0,), guards=2)
    solver = PSATDMaxwellSolver(g, dt=1e-10)
    with pytest.raises(ConfigurationError):
        solver.push_b(0.5)


def test_langmuir_with_psatd():
    """Full PIC with the spectral solver: the plasma oscillates at
    omega_pe, demonstrating the drop-in compatibility with the particle
    kernels on the staggered layout."""
    from repro.constants import m_e, plasma_frequency, plasma_wavelength, q_e
    from repro.core.simulation import Simulation
    from repro.particles.injection import UniformProfile
    from repro.particles.species import Species

    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((64,), (0.0,), (length,), guards=4)
    sim = Simulation(g, shape_order=2, smoothing_passes=0,
                     maxwell_solver="psatd")
    e = Species("e", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=16)
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    steps = 500
    hist = np.empty(steps)
    for i in range(steps):
        sim.step()
        hist[i] = g.fields["Ex"][g.guards + 16]
    spec = np.abs(np.fft.rfft(hist - hist.mean()))
    freqs = np.fft.rfftfreq(steps, d=sim.dt) * 2 * np.pi
    omega = freqs[np.argmax(spec)]
    assert omega == pytest.approx(plasma_frequency(n0), rel=0.1)


# -- hot-loop hoisting (per-step recompute bugfix) ---------------------------


def test_hot_loop_tables_hoisted_into_init():
    """``long_corr`` and ``b_j_coeff`` used to be rebuilt inside step()
    every step (in float64, whatever the grid precision); they must now be
    construction-time tables stored at the grid's working precision."""
    for dtype, expect in ((np.float64, np.float64), (np.float32, np.float32)):
        g = YeeGrid((16,), (0.0,), (1.0,), guards=2, dtype=dtype)
        solver = PSATDMaxwellSolver(g, dt=1e-10)
        assert solver.long_corr.dtype == np.dtype(expect)
        assert solver.b_j_coeff.dtype == np.dtype(expect)
        # double-built values, demoted: the k -> 0 element vanishes exactly
        k0 = tuple(0 for _ in range(g.ndim))
        assert solver.long_corr[k0] == 0.0
        assert solver.b_j_coeff[k0] == 0.0


def test_float32_pipeline_stays_complex64():
    """Mixed-precision regression: on a float32 grid every spectral table
    is float32/complex64 and a step keeps the fields float32 — no silent
    promotion through per-step float64 rebuilds."""
    g = YeeGrid((32,), (0.0,), (1.0,), guards=2, dtype=np.float32)
    g.interior_view("Ey")[...] = 1.0
    apply_periodic(g, 0)
    solver = PSATDMaxwellSolver(g, dt=1e-10, v_galilean=0.3 * c)
    for table in (solver.cos, solver.sin, solver.j_coeff,
                  solver.long_corr, solver.b_j_coeff, solver.k_mag):
        assert table.dtype == np.float32
    for table in (solver.xe_t, solver.xe_lmt, solver.xb):
        assert table.dtype == np.complex64
    for phase in solver._phase.values():
        assert phase.dtype == np.complex64
    solver.step()
    for comp in FIELD_COMPONENTS:
        assert g.fields[comp].dtype == np.float32


# -- spectral window staggering (nodal-plane bugfix) -------------------------


def test_spectral_round_trip_restores_nodal_plane():
    """``_from_spectral`` writes the n unique periodic samples; the
    duplicated nodal plane ``arr[g+n]`` (same physical point as
    ``arr[g]``) must be restored per the component's staggering — it used
    to be left stale."""
    rng = np.random.default_rng(7)
    g = YeeGrid((12, 8), (0.0, 0.0), (1.0, 1.0), guards=3)
    solver = PSATDMaxwellSolver(g, dt=1e-10)
    gd = g.guards
    for comp in FIELD_COMPONENTS:
        arr = g.fields[comp]
        arr[...] = 0.0
        g.interior_view(comp)[...] = rng.standard_normal(
            g.interior_view(comp).shape
        )
        for axis in range(g.ndim):
            apply_periodic(g, axis, components=[comp])
        before = g.interior_view(comp).copy()
        # corrupt every duplicated nodal plane, then round-trip
        for d, n in enumerate(g.n_cells):
            if STAGGER[comp][d] == 0:
                sl = [slice(None)] * g.ndim
                sl[d] = slice(gd + n, gd + n + 1)
                arr[tuple(sl)] = 1e6
        solver._from_spectral(comp, solver._to_spectral(comp))
        np.testing.assert_allclose(
            g.interior_view(comp), before, atol=1e-12
        )
        for d, n in enumerate(g.n_cells):
            if STAGGER[comp][d] == 0:
                lo = [slice(None)] * g.ndim
                hi = [slice(None)] * g.ndim
                lo[d] = slice(gd, gd + 1)
                hi[d] = slice(gd + n, gd + n + 1)
                np.testing.assert_array_equal(
                    arr[tuple(hi)], arr[tuple(lo)]
                )


# -- capability-flag dispatch (string special-case bugfix) -------------------


def test_solver_capability_flags():
    from repro.grid.pml import PMLMaxwellSolver

    assert PSATDMaxwellSolver.advances_together is True
    assert MaxwellSolver.advances_together is False
    assert PMLMaxwellSolver.advances_together is False
    assert PSATDMaxwellSolver.guard_cells > MaxwellSolver.guard_cells == 1
    assert PMLMaxwellSolver.guard_cells == 1


def test_advance_fields_dispatches_on_solver_capability():
    """The step driver must dispatch on ``solver.advances_together``, not
    on the ``maxwell_solver`` config string: with the string check, any
    consumer holding a PSATD solver under a different label fell into the
    split push_b path, which raises mid-step."""
    from repro.core.simulation import Simulation

    g = YeeGrid((16,), (0.0,), (1.0,), guards=4)
    sim = Simulation(g, smoothing_passes=0, maxwell_solver="psatd")
    sim.maxwell_solver = "not-the-dispatch-key"
    sim._advance_fields()  # used to raise ConfigurationError via push_b


def test_mr_rejects_psatd_with_clear_error():
    from repro.core.mr_simulation import MRSimulation

    g = YeeGrid((16,), (0.0,), (1.0,), guards=4)
    sim = MRSimulation(g, smoothing_passes=0, maxwell_solver="psatd")
    with pytest.raises(ConfigurationError, match="spectral"):
        sim.add_patch((4,), (12,))


def test_v_galilean_requires_psatd():
    from repro.core.simulation import Simulation

    g = YeeGrid((16,), (0.0,), (1.0,), guards=4)
    with pytest.raises(ConfigurationError, match="psatd"):
        Simulation(g, maxwell_solver="yee", v_galilean=(0.1 * c, 0.0, 0.0))


# -- Galilean (comoving-current) variant -------------------------------------


def test_galilean_config_validation():
    g = YeeGrid((16,), (0.0,), (1.0,), guards=2)
    with pytest.raises(ConfigurationError, match="< c"):
        PSATDMaxwellSolver(g, dt=1e-10, v_galilean=c)
    with pytest.raises(ConfigurationError, match="invariant axis"):
        PSATDMaxwellSolver(g, dt=1e-10, v_galilean=(0.0, 0.1 * c, 0.0))
    with pytest.raises(ConfigurationError, match="region"):
        PSATDMaxwellSolver(g, dt=1e-10, region="interior")


def test_galilean_tables_reduce_to_standard():
    """As v_gal -> 0 every Galilean coefficient reduces to its standard
    PSATD counterpart (same k=0 limits included)."""
    g = YeeGrid((32,), (0.0,), (3.2e-5,), guards=2)
    dt = 2.0 * cfl_dt(g.dx)
    std = PSATDMaxwellSolver(g, dt)
    xe_t, xe_lmt, xb = galilean_coefficients(
        std.k_mag.astype(np.float64), np.zeros(std.k_mag.shape), dt
    )
    np.testing.assert_allclose(xe_t, -std.j_coeff, rtol=1e-12, atol=1e-30)
    np.testing.assert_allclose(xe_lmt, std.long_corr, rtol=1e-10, atol=1e-25)
    np.testing.assert_allclose(xb, 1j * std.b_j_coeff, rtol=1e-10, atol=1e-25)


def test_galilean_vacuum_dispersion_unchanged():
    """The Galilean scheme only modifies the *source* coefficients: with
    J = 0 the propagator is the standard PSATD one, so a vacuum plane
    wave still advects at exactly c (the analytic vacuum relation
    omega = c k) even with a large v_gal.  This is the guard against the
    classic mistake of multiplying the old fields by the Galilean phase,
    which would shift the vacuum dispersion."""
    g, k = plane_wave_grid(n=32, wavelengths=4)
    dt = 3.0 * cfl_dt(g.dx)
    solver = PSATDMaxwellSolver(g, dt, v_galilean=-0.6 * c)
    steps = 40
    for _ in range(steps):
        solver.step()
    shift = c * steps * dt
    x_e = g.axis_coords(0, "Ey")
    expected = np.sin(k * (x_e - shift))
    np.testing.assert_allclose(g.interior_view("Ey"), expected, atol=1e-10)


def test_galilean_advected_current_exact():
    """The defining property of the comoving-current closure: a current
    that really is uniformly advected at v_gal is integrated *exactly*,
    at any dt.  Longitudinal 1D case with the analytic oracle

        Ex(x, t) = -J0/(eps0 k v) [sin(k x) - sin(k (x - v t))],

    with J re-imposed analytically at each step midpoint."""
    n = 48
    length = 4.8e-5
    g = YeeGrid((n,), (0.0,), (length,), guards=2)
    v = -0.6 * c
    k = 2 * np.pi * 3 / length
    j0 = 1.0e7
    dt = 2.7 * cfl_dt(g.dx)  # far beyond the FDTD limit
    solver = PSATDMaxwellSolver(g, dt, v_galilean=v)
    x_j = g.axis_coords(0, "Jx")
    steps = 25
    for m in range(steps):
        t_mid = (m + 0.5) * dt
        g.interior_view("Jx")[...] = j0 * np.cos(k * (x_j - v * t_mid))
        solver.step()
    t_end = steps * dt
    x_e = g.axis_coords(0, "Ex")
    expected = -j0 / (eps0 * k * v) * (
        np.sin(k * x_e) - np.sin(k * (x_e - v * t_end))
    )
    scale = np.max(np.abs(expected))
    np.testing.assert_allclose(
        g.interior_view("Ex"), expected, atol=1e-9 * scale
    )
    # nothing leaks into the transverse fields
    assert np.max(np.abs(g.interior_view("Ey"))) == 0.0
    assert np.max(np.abs(g.interior_view("Bz"))) == 0.0


def test_standard_closure_is_not_exact_for_advected_current():
    """Contrast for the test above: the J-constant closure accumulates an
    O((Omega dt)^2) error per step on the same advected current — the
    error the Galilean scheme exists to remove."""
    n = 48
    length = 4.8e-5
    g = YeeGrid((n,), (0.0,), (length,), guards=2)
    v = -0.6 * c
    k = 2 * np.pi * 3 / length
    j0 = 1.0e7
    dt = 2.7 * cfl_dt(g.dx)
    solver = PSATDMaxwellSolver(g, dt)  # standard closure
    x_j = g.axis_coords(0, "Jx")
    steps = 25
    for m in range(steps):
        t_mid = (m + 0.5) * dt
        g.interior_view("Jx")[...] = j0 * np.cos(k * (x_j - v * t_mid))
        solver.step()
    t_end = steps * dt
    x_e = g.axis_coords(0, "Ex")
    expected = -j0 / (eps0 * k * v) * (
        np.sin(k * x_e) - np.sin(k * (x_e - v * t_end))
    )
    scale = np.max(np.abs(expected))
    err = np.max(np.abs(g.interior_view("Ex") - expected))
    assert err > 1e-4 * scale


def test_boosted_frame_galilean_velocity():
    from repro.core.boosted_frame import BoostedFrame

    f = BoostedFrame(gamma=2.0)
    v = f.galilean_velocity()
    assert v[1] == v[2] == 0.0
    assert v[0] == pytest.approx(-f.beta * c)
    # usable as a solver argument
    g = YeeGrid((16,), (0.0,), (1.0,), guards=2)
    solver = PSATDMaxwellSolver(g, dt=1e-10, v_galilean=v)
    assert solver.galilean
