"""Tests for the PSATD spectral Maxwell solver."""

import numpy as np
import pytest

from repro.constants import c, eps0
from repro.exceptions import ConfigurationError
from repro.grid.boundary import apply_periodic
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.psatd import PSATDMaxwellSolver
from repro.grid.yee import YeeGrid


def plane_wave_grid(n=32, wavelengths=4):
    length = 1.0
    g = YeeGrid((n,), (0.0,), (length,), guards=2)
    k = 2 * np.pi * wavelengths / length
    x_e = g.axis_coords(0, "Ey")
    x_b = g.axis_coords(0, "Bz")
    g.interior_view("Ey")[...] = np.sin(k * x_e)
    g.interior_view("Bz")[...] = np.sin(k * x_b) / c
    apply_periodic(g, 0)
    return g, k


def test_vacuum_plane_wave_exact_dispersion():
    """PSATD advects a periodic plane wave at exactly c — even at only 8
    points per wavelength and a time step far beyond the FDTD CFL."""
    g, k = plane_wave_grid(n=32, wavelengths=4)
    dt = 3.0 * cfl_dt(g.dx)  # super-CFL: illegal for FDTD
    solver = PSATDMaxwellSolver(g, dt)
    steps = 40
    for _ in range(steps):
        solver.step()
    shift = c * steps * dt
    x_e = g.axis_coords(0, "Ey")
    expected = np.sin(k * (x_e - shift))
    np.testing.assert_allclose(g.interior_view("Ey"), expected, atol=1e-10)


def test_psatd_beats_fdtd_dispersion():
    """At coarse resolution the FDTD wave lags; the PSATD wave does not."""

    def run(solver_cls, **kw):
        g, k = plane_wave_grid(n=24, wavelengths=3)
        dt = cfl_dt(g.dx, 0.9)
        solver = solver_cls(g, dt, **kw)
        steps = 120
        for _ in range(steps):
            if solver_cls is MaxwellSolver:
                apply_periodic(g, 0)
            solver.step()
        shift = c * steps * dt
        x_e = g.axis_coords(0, "Ey")
        expected = np.sin(k * (x_e - shift))
        return np.max(np.abs(g.interior_view("Ey") - expected))

    err_fdtd = run(MaxwellSolver)
    err_psatd = run(PSATDMaxwellSolver)
    assert err_psatd < 1e-9
    assert err_fdtd > 100 * err_psatd


def test_energy_conserved_exactly_in_vacuum():
    g, _ = plane_wave_grid(n=32)
    solver = PSATDMaxwellSolver(g, dt=2.0 * cfl_dt(g.dx))
    e0 = g.field_energy()
    for _ in range(100):
        solver.step()
    assert g.field_energy() == pytest.approx(e0, rel=1e-12)


def test_uniform_current_drives_e_like_fdtd():
    """The k=0 mode reduces to dE/dt = -J/eps0 exactly."""
    g = YeeGrid((16,), (0.0,), (16.0,), guards=2)
    dt = 1e-10
    solver = PSATDMaxwellSolver(g, dt)
    g.Jy[...] = 3.0
    solver.step()
    np.testing.assert_allclose(
        g.interior_view("Ey"), -3.0 * dt / eps0, rtol=1e-12
    )


def test_2d_pulse_isotropic():
    n = 32
    g = YeeGrid((n, n), (0, 0), (1.0, 1.0), guards=2)
    x = g.axis_coords(0, "Ez")
    y = g.axis_coords(1, "Ez")
    r2 = (x[:, None] - 0.5) ** 2 + (y[None, :] - 0.5) ** 2
    g.interior_view("Ez")[...] = np.exp(-r2 / 0.005)
    apply_periodic(g, 0)
    apply_periodic(g, 1)
    solver = PSATDMaxwellSolver(g, cfl_dt(g.dx, 0.9))
    for _ in range(15):
        solver.step()
    ez = g.interior_view("Ez")
    np.testing.assert_allclose(ez, ez.T, atol=1e-12)
    np.testing.assert_allclose(ez, ez[::-1, :], atol=1e-9)


def test_static_field_is_steady():
    g = YeeGrid((16, 16), (0, 0), (1, 1), guards=2)
    g.Bz[...] = 2.0
    solver = PSATDMaxwellSolver(g, dt=1e-9)
    for _ in range(10):
        solver.step()
    np.testing.assert_allclose(g.interior_view("Bz"), 2.0, rtol=1e-12)


def test_half_push_interface_rejected():
    g = YeeGrid((8,), (0.0,), (1.0,), guards=2)
    solver = PSATDMaxwellSolver(g, dt=1e-10)
    with pytest.raises(ConfigurationError):
        solver.push_b(0.5)


def test_langmuir_with_psatd():
    """Full PIC with the spectral solver: the plasma oscillates at
    omega_pe, demonstrating the drop-in compatibility with the particle
    kernels on the staggered layout."""
    from repro.constants import m_e, plasma_frequency, plasma_wavelength, q_e
    from repro.core.simulation import Simulation
    from repro.particles.injection import UniformProfile
    from repro.particles.species import Species

    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((64,), (0.0,), (length,), guards=4)
    sim = Simulation(g, shape_order=2, smoothing_passes=0,
                     maxwell_solver="psatd")
    e = Species("e", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=16)
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    steps = 500
    hist = np.empty(steps)
    for i in range(steps):
        sim.step()
        hist[i] = g.fields["Ex"][g.guards + 16]
    spec = np.abs(np.fft.rfft(hist - hist.mean()))
    freqs = np.fft.rfftfreq(steps, d=sim.dt) * 2 * np.pi
    omega = freqs[np.argmax(spec)]
    assert omega == pytest.approx(plasma_frequency(n0), rel=0.1)
