"""Cross-cutting property tests of core numerical invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import c, m_e, q_e
from repro.grid.interpolation import prolong, restrict
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.pml import PMLMaxwellSolver
from repro.grid.yee import YeeGrid
from repro.particles.pusher import lorentz_factor, push_boris, push_vay
from repro.particles.sorting import morton_encode


def test_pml_reflection_improves_with_thickness():
    """Thicker layers absorb better — the design knob of the Sec. V.B
    patch termination."""

    def residual(n_pml):
        g = YeeGrid((256,), (0.0,), (1.0,), guards=3)
        x_e = g.axis_coords(0, "Ey")
        x_b = g.axis_coords(0, "Bz")
        pulse = lambda s: np.exp(-(((s - 0.7) / 0.02) ** 2))
        g.interior_view("Ey")[...] = pulse(x_e)
        g.interior_view("Bz")[...] = pulse(x_b) / c
        dt = cfl_dt(g.dx, 0.8)
        solver = PMLMaxwellSolver(g, dt, n_pml=n_pml)
        for _ in range(int(0.6 / (c * dt))):
            solver.step()
        sl = g.valid_slices("Ey")[0]
        return float(np.sum(g.Ey[sl][20:-20] ** 2))

    r4, r8, r16 = residual(4), residual(8), residual(16)
    assert r8 < r4
    assert r16 < r8


@settings(max_examples=25, deadline=None)
@given(
    ratio=st.sampled_from([2, 3, 4]),
    stagger=st.sampled_from([0, 1]),
    seed=st.integers(0, 100),
)
def test_restriction_preserves_integral(ratio, stagger, seed):
    """Restriction is a density average: the integral (sum x cell size) of
    the interior is preserved — the property that makes the restricted
    current drive the parent with the right total current."""
    rng = np.random.default_rng(seed)
    n_c = 12
    n_f = n_c * ratio + (1 - stagger)
    arr = np.zeros(n_f)
    # interior support only, so no edge-clipping effects
    arr[2 * ratio : -2 * ratio] = rng.normal(size=n_f - 4 * ratio)
    coarse = restrict(arr, ratio, (stagger,), (n_c + (1 - stagger),))
    integral_f = arr.sum() * (1.0 / ratio)
    integral_c = coarse.sum() * 1.0
    assert integral_c == pytest.approx(integral_f, rel=1e-9, abs=1e-12)


@settings(max_examples=25, deadline=None)
@given(ratio=st.sampled_from([2, 3, 4]), seed=st.integers(0, 100))
def test_prolongation_preserves_integral(ratio, seed):
    """Linear prolongation of interior-supported data preserves the
    integral exactly: the interpolation weights at each fine point
    telescope to one coarse cell's worth of measure."""
    rng = np.random.default_rng(seed)
    n_c = 16
    coarse = np.zeros(n_c)
    coarse[3:-3] = rng.normal(size=n_c - 6)
    n_f = (n_c - 1) * ratio + 1
    fine = prolong(coarse, ratio, (0,), (n_f,))
    integral_c = coarse.sum() * 1.0
    integral_f = fine.sum() * (1.0 / ratio)
    assert integral_f == pytest.approx(integral_c, rel=1e-12, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 1000),
    b_mag=st.floats(0.1, 10.0),
    dt_frac=st.floats(0.01, 0.3),
)
def test_boris_gyrophase_energy_invariant(seed, b_mag, dt_frac):
    """|u| is invariant under pure magnetic rotation at ANY phase step."""
    rng = np.random.default_rng(seed)
    u = rng.normal(size=(5, 3))
    b = np.tile([0.0, 0.0, b_mag], (5, 1))
    e = np.zeros((5, 3))
    omega_c = q_e * b_mag / m_e
    dt = dt_frac / omega_c
    mag0 = np.linalg.norm(u, axis=1)
    for _ in range(7):
        u = push_boris(u, e, b, -q_e, m_e, dt)
    np.testing.assert_allclose(np.linalg.norm(u, axis=1), mag0, rtol=1e-12)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 1000))
def test_vay_matches_boris_first_order(seed):
    """The two pushers agree to O(dt^2) on one step."""
    rng = np.random.default_rng(seed)
    u = rng.normal(size=(4, 3))
    e = 1e6 * rng.normal(size=(4, 3))
    b = rng.normal(size=(4, 3))
    dt = 1e-16
    ub = push_boris(u, e, b, -q_e, m_e, dt)
    uv = push_vay(u, e, b, -q_e, m_e, dt)
    du = np.abs(ub - u).max() + 1e-300
    np.testing.assert_allclose(ub, uv, atol=2e-4 * du + 1e-14)


@settings(max_examples=30, deadline=None)
@given(
    x=st.integers(0, 1023),
    y=st.integers(0, 1023),
    z=st.integers(0, 1023),
)
def test_morton_encode_injective_3d(x, y, z):
    """Distinct coordinates give distinct codes (bit interleave is exact
    for 10-bit inputs)."""
    code = morton_encode([np.array([x]), np.array([y]), np.array([z])])[0]
    # decode by de-interleaving
    def extract(c, offset):
        out = 0
        for bit in range(10):
            out |= ((int(c) >> (3 * bit + offset)) & 1) << bit
        return out

    assert extract(code, 0) == x
    assert extract(code, 1) == y
    assert extract(code, 2) == z


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500), steps=st.integers(5, 30))
def test_fdtd_reversibility(seed, steps):
    """The leapfrog vacuum update is time-reversible: stepping forward then
    backward (negated dt) restores the initial fields to round-off."""
    rng = np.random.default_rng(seed)
    g = YeeGrid((32,), (0.0,), (1.0,), guards=3)
    sl = g.valid_slices("Ey")
    g.fields["Ey"][sl] = rng.normal(size=g.fields["Ey"][sl].shape)
    sl = g.valid_slices("Bz")
    # B at the wave-impedance scale E/c: with mismatched units the c^2
    # dt/dx factor amplifies round-off far above the field scale
    g.fields["Bz"][sl] = rng.normal(size=g.fields["Bz"][sl].shape) / c
    from repro.grid.boundary import apply_periodic

    apply_periodic(g, 0)
    before = {c_: g.fields[c_].copy() for c_ in ("Ey", "Bz")}
    dt = cfl_dt(g.dx, 0.5)
    fwd = MaxwellSolver(g, dt)
    for _ in range(steps):
        apply_periodic(g, 0)
        fwd.step()
    # reverse: same solver structure with dt -> -dt
    bwd = MaxwellSolver.__new__(MaxwellSolver)
    bwd.grid = g
    bwd.dt = -dt
    bwd._scratch = np.zeros(g.shape, dtype=g.dtype)
    for _ in range(steps):
        apply_periodic(g, 0)
        bwd.step()
    apply_periodic(g, 0)
    for comp in ("Ey", "Bz"):
        sl = g.valid_slices(comp)
        np.testing.assert_allclose(
            g.fields[comp][sl], before[comp][sl], rtol=1e-9, atol=1e-12
        )
