"""Kernel dispatch registry and tiled fast-path tests: registry lookup
and registration errors, machine-precision cross-validation of the tiled
kernels against the vectorized ones (sorted and unsorted), charge
conservation of the tiled Esirkepov deposit, the shape-weight cache, and
the kernel-variant plumbing through ``Simulation``."""

import numpy as np
import pytest

from repro.constants import c, m_e, plasma_wavelength, q_e
from repro.core.simulation import Simulation
from repro.exceptions import ConfigurationError
from repro.grid.maxwell import cfl_dt
from repro.grid.stencils import diff_backward
from repro.grid.yee import YeeGrid
from repro.observability import attach_observability
from repro.observability.tracer import build_tree
from repro.particles.deposit import (
    deposit_charge,
    deposit_current_esirkepov_tiled,
    deposit_current_reference,
    esirkepov_window,
)
from repro.particles.gather import gather_fields, gather_fields_tiled
from repro.particles.injection import UniformProfile
from repro.particles.kernels import (
    KernelSet,
    available_kernel_variants,
    get_kernel_set,
    register_kernel_set,
    validate_kernel_set,
)
from repro.particles.shapes import ShapeWeightCache, shape_weights
from repro.particles.species import Species


def make_grid(ndim, n=10, guards=5):
    return YeeGrid((n,) * ndim, (0.0,) * ndim, (float(n),) * ndim, guards=guards)


def divergence_j(grid):
    div = np.zeros(grid.shape)
    for d, comp in enumerate(("Jx", "Jy", "Jz")[: grid.ndim]):
        div += diff_backward(grid.fields[comp], d, grid.dx[d])
    return div


# -- registry ----------------------------------------------------------------

def test_builtin_variants_registered():
    assert {"reference", "vectorized", "tiled"} <= set(available_kernel_variants())


def test_unknown_variant_raises():
    with pytest.raises(ConfigurationError, match="unknown kernel variant"):
        get_kernel_set("simd")


def test_duplicate_registration_raises():
    tiled = get_kernel_set("tiled")
    with pytest.raises(ConfigurationError, match="duplicate"):
        register_kernel_set(KernelSet(
            name="tiled",
            gather=tiled.gather,
            deposit_charge=tiled.deposit_charge,
            deposit_current=tiled.deposit_current,
            deposit_current_direct=tiled.deposit_current_direct,
        ))


def test_tiled_is_sort_aware():
    assert get_kernel_set("tiled").sort_aware
    assert not get_kernel_set("vectorized").sort_aware


@pytest.mark.parametrize("name", ["reference", "tiled"])
@pytest.mark.parametrize("ndim", [1, 2, 3])
def test_validate_kernel_set_machine_precision(name, ndim):
    errors = validate_kernel_set(name, ndim=ndim, order=3)
    assert max(errors.values()) < 1e-12, errors


# -- tiled deposition: conservation + match to the scalar reference ----------

@pytest.mark.parametrize("order", [1, 2, 3])
@pytest.mark.parametrize("ndim", [1, 2, 3])
@pytest.mark.parametrize("sort", [False, True])
def test_tiled_esirkepov_matches_reference_and_conserves(order, ndim, sort):
    """The fast path must agree with the per-particle scalar kernel to
    machine precision and keep (rho1 - rho0)/dt + div J = 0, whether or
    not the species was sorted (sorting only changes summation order)."""
    rng = np.random.default_rng(100 * ndim + order)
    n = 25
    pos0 = rng.uniform(3.0, 7.0, size=(n, ndim))
    pos1 = pos0 + rng.uniform(-0.9, 0.9, size=(n, ndim))
    if sort:
        key = np.lexsort(np.floor(pos0).T[::-1])
        pos0, pos1 = pos0[key], pos1[key]
    w = rng.uniform(0.5, 2.0, size=n)
    vel = rng.uniform(-0.5, 0.5, size=(n, 3)) * c
    dt, charge = 1.0e-9, -q_e

    g_tiled = make_grid(ndim)
    g_ref = make_grid(ndim)
    deposit_current_esirkepov_tiled(g_tiled, pos0, pos1, vel, w, charge, dt, order)
    deposit_current_reference(g_ref, pos0, pos1, vel, w, charge, dt, order)
    for comp in ("Jx", "Jy", "Jz"):
        scale = np.max(np.abs(g_ref.fields[comp])) + 1e-300
        assert np.max(np.abs(g_tiled.fields[comp] - g_ref.fields[comp])) / scale < 1e-12

    rho0 = make_grid(ndim)
    rho1 = make_grid(ndim)
    deposit_charge(rho0, pos0, w, charge, order)
    deposit_charge(rho1, pos1, w, charge, order)
    residual = (rho1.fields["rho"] - rho0.fields["rho"]) / dt + divergence_j(g_tiled)
    scale = np.max(np.abs(rho1.fields["rho"] - rho0.fields["rho"]) / dt) + 1e-300
    assert np.max(np.abs(residual)) / scale < 1e-11


def test_tight_window_is_minimal_for_subcell_moves():
    for order in (1, 2, 3):
        assert esirkepov_window(order, 0.9, tight=True) == order + 2
        assert esirkepov_window(order, 0.9) == order + 3
        # beyond one cell the tight window falls back to the widened one
        assert esirkepov_window(order, 1.7, tight=True) == order + 5


# -- gather fast path --------------------------------------------------------

def test_gather_tiled_bit_identical():
    g = make_grid(2)
    rng = np.random.default_rng(3)
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        g.fields[comp][...] = rng.normal(size=g.shape)
    pos = rng.uniform(1.0, 9.0, size=(400, 2))
    e0, b0 = gather_fields(g, pos, order=3)
    e1, b1 = gather_fields_tiled(g, pos, order=3)
    assert np.array_equal(e0, e1) and np.array_equal(b0, b1)


def test_shape_weight_cache_shares_stagger_lattices():
    """Six components over ndim axes touch only two stagger offsets per
    axis, so a 2D gather needs 4 evaluations for 12 lookups."""
    rng = np.random.default_rng(5)
    coords = [rng.uniform(2.0, 8.0, size=50) for _ in range(2)]
    cache = ShapeWeightCache(coords, order=2)
    for stag in ((0, 1), (1, 0), (0, 0), (1, 1), (0, 1), (1, 0)):
        for axis in range(2):
            i0, w = cache.get(axis, stag[axis])
            x = coords[axis] - 0.5 * stag[axis]
            i0_ref, w_ref = shape_weights(x, 2)
            assert np.array_equal(i0, i0_ref) and np.array_equal(w, w_ref)
    assert cache.misses == 4
    assert cache.hits == 8


# -- simulation plumbing -----------------------------------------------------

def build_sim(kernels):
    n0 = 1e24
    length = plasma_wavelength(n0)
    n_cells = 16
    g = YeeGrid((n_cells,), (0.0,), (length,), guards=4)
    sim = Simulation(
        g, dt=cfl_dt((length / n_cells,), 0.9), shape_order=2,
        smoothing_passes=0, kernels=kernels,
    )
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=4)
    return sim


def test_simulation_rejects_unknown_variant():
    g = YeeGrid((8,), (0.0,), (1.0,), guards=4)
    with pytest.raises(ConfigurationError, match="unknown kernel variant"):
        Simulation(g, kernels="simd")


def test_simulation_tiled_matches_vectorized_trajectory():
    sim_v = build_sim("vectorized")
    sim_t = build_sim("tiled")
    sim_v.step(5)
    sim_t.step(5)
    pv = sim_v.species["electrons"].positions
    pt = sim_t.species["electrons"].positions
    assert np.max(np.abs(pv - pt)) < 1e-12 * np.max(np.abs(pv))
    for comp in ("Ex", "Jx"):
        a, b = sim_v.grid.fields[comp], sim_t.grid.fields[comp]
        scale = np.max(np.abs(a)) + 1e-300
        assert np.max(np.abs(a - b)) / scale < 1e-12


def test_gather_and_deposit_spans_carry_kernel_attribute():
    sim = build_sim("tiled")
    tracer, _ = attach_observability(sim)
    sim.step(1)
    children = build_tree(tracer.records)
    step = children[-1][0]
    phases = {c.name: c for c in children[step.sid]}
    assert phases["gather"].attrs["kernel"] == "tiled"
    assert phases["deposit"].attrs["kernel"] == "tiled"
