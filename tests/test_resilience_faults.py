"""Fault injection and recovery: the never-a-silent-wrong-answer contract.

Every injected fault must either be fully recovered — final state
bit-identical to the fault-free run — or raise a typed
:class:`~repro.exceptions.ResilienceError`.  The commcheck replay must
see every fault paired with its recovery (RES001/RES002) and flag
unrecovered ones.
"""

import numpy as np
import pytest

from repro.analysis.commcheck import check_comm
from repro.analysis.sanitize import Sanitizer
from repro.constants import m_e, plasma_wavelength, q_e
from repro.exceptions import ConfigurationError, ResilienceError
from repro.parallel.comm import SimComm
from repro.parallel.distributed import DistributedSimulation
from repro.particles.injection import UniformProfile
from repro.particles.species import Species
from repro.resilience import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    RecoveryPolicy,
    corrupt_payload,
)

N_STEPS = 10


def build(schedule=None, policy=None, interval=0, checkpoint_dir=None):
    """A thermal 4-rank Langmuir setup with cross-rank particle traffic."""
    n0 = 1e24
    length = plasma_wavelength(n0)
    sim = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length), n_ranks=4, max_grid_size=8,
        fault_schedule=schedule, recovery=policy,
        checkpoint_interval=interval, checkpoint_dir=checkpoint_dir,
    )
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    k = 2 * np.pi / length

    def perturb(sp):
        sp.momenta[:, 0] += 1e-3 * np.sin(k * sp.positions[:, 0])

    sim.add_species(
        e, profile=UniformProfile(n0), ppc=(2, 2), momentum_init=perturb,
        temperature_uth=0.05, rng_seed=7,
    )
    return sim


@pytest.fixture(scope="module")
def reference():
    """The fault-free run every recovered run must match bit-for-bit."""
    sim = build()
    sim.step(N_STEPS)
    return {
        "energy": sim.field_energy(),
        "n": sim.total_particles(),
        "ex": np.array(sim.global_field_view("Ex"), copy=True),
    }


def assert_matches_reference(sim, reference):
    assert sim.total_particles() == reference["n"]
    assert sim.field_energy() == reference["energy"]
    np.testing.assert_array_equal(sim.global_field_view("Ex"), reference["ex"])


# -- deterministic per-kind recovery -----------------------------------------

@pytest.mark.parametrize("kind", ["drop", "duplicate", "corrupt", "delay"])
def test_message_fault_recovered_bit_identically(kind, reference):
    schedule = FaultSchedule([FaultSpec(kind=kind, step=4)], seed=1)
    policy = RecoveryPolicy()
    sim = build(schedule, policy)
    sim.step(N_STEPS)
    assert schedule.fired(), f"{kind} spec never fired"
    assert policy.stats.total_recoveries() >= 1
    report = check_comm(sim.comm)
    assert report.ok, report.format()
    assert_matches_reference(sim, reference)


def test_targeted_particle_corruption_recovered(reference):
    """Corrupting the data-carrying redistribute payload specifically."""
    schedule = FaultSchedule(
        [FaultSpec(kind="corrupt", step=2, tag="particles")], seed=3
    )
    policy = RecoveryPolicy()
    sim = build(schedule, policy)
    sim.step(N_STEPS)
    assert schedule.fired()
    assert policy.stats.retries >= 1
    check_comm(sim.comm).raise_if_failed()
    assert_matches_reference(sim, reference)


def test_rank_failure_restore_and_redistribute(tmp_path, reference):
    """A rank dies mid-run; restore + evacuate + replay matches the
    fault-free run to machine precision (the acceptance criterion)."""
    schedule = FaultSchedule([FaultSpec(kind="rank_failure", step=5, rank=1)])
    policy = RecoveryPolicy()
    sim = build(schedule, policy, interval=3,
                checkpoint_dir=str(tmp_path / "ckpt"))
    sim.step(N_STEPS)
    assert sim.dead_ranks == {1}
    assert not np.any(sim.dm.assignment == 1)  # boxes evacuated
    assert policy.stats.restores == 1
    assert policy.stats.restored_bytes > 0
    report = check_comm(sim.comm)
    assert report.ok, report.format()
    assert_matches_reference(sim, reference)


def test_rank_failure_in_memory_checkpoint(reference):
    schedule = FaultSchedule([FaultSpec(kind="rank_failure", step=6, rank=2)])
    policy = RecoveryPolicy()
    sim = build(schedule, policy, interval=4)  # no dir: in-memory restore
    sim.step(N_STEPS)
    assert sim.dead_ranks == {2}
    assert policy.stats.restores == 1
    check_comm(sim.comm).raise_if_failed()
    assert_matches_reference(sim, reference)


# -- unrecoverable faults raise, never silently corrupt ----------------------

@pytest.mark.parametrize("kind", ["drop", "corrupt", "delay"])
def test_fault_without_policy_raises(kind):
    schedule = FaultSchedule([FaultSpec(kind=kind, step=2)], seed=1)
    sim = build(schedule, policy=None)
    with pytest.raises(ResilienceError):
        sim.step(N_STEPS)


def test_rank_failure_without_policy_raises():
    schedule = FaultSchedule([FaultSpec(kind="rank_failure", step=3, rank=0)])
    sim = build(schedule, policy=None, interval=2)
    with pytest.raises(ResilienceError, match="no recovery policy"):
        sim.step(N_STEPS)


def test_rank_failure_before_any_checkpoint_raises():
    # interval=0 still takes the initial restore point at step 0, so the
    # failure must be scheduled to beat it: step 0 fires before it.
    schedule = FaultSchedule([FaultSpec(kind="rank_failure", step=0, rank=0)])
    sim = build(schedule, policy=RecoveryPolicy())
    with pytest.raises(ResilienceError, match="no checkpoint"):
        sim.step(N_STEPS)


# -- seeded fuzz over random schedules ---------------------------------------

@pytest.mark.parametrize("seed", range(6))
def test_fuzz_random_schedule_recovers_or_raises(seed, reference):
    """Any seeded random scenario either ends bit-identical to the
    fault-free run with a clean commcheck replay, or dies with a typed
    ResilienceError — never a silent wrong answer."""
    schedule = FaultSchedule.random(
        seed=seed, n_faults=4, max_step=N_STEPS - 2, n_ranks=4
    )
    policy = RecoveryPolicy()
    sim = build(schedule, policy)
    try:
        sim.step(N_STEPS)
    except ResilienceError:
        return  # typed failure is an acceptable outcome, silence is not
    report = check_comm(sim.comm)
    assert report.ok, report.format()
    n_fired = len(schedule.fired())
    assert policy.stats.total_recoveries() >= n_fired
    assert_matches_reference(sim, reference)


def test_fuzz_is_replayable():
    """Same seed, same schedule: the scenario is the seed."""
    a = FaultSchedule.random(seed=11, n_faults=5, max_step=8, n_ranks=4)
    b = FaultSchedule.random(seed=11, n_faults=5, max_step=8, n_ranks=4)
    assert [
        (s.kind, s.step, s.src, s.dst, s.tag, s.delay) for s in a.specs
    ] == [(s.kind, s.step, s.src, s.dst, s.tag, s.delay) for s in b.specs]


# -- the commcheck audit flags exactly the unrecovered faults ----------------

def test_res001_flags_unrecovered_message_fault():
    comm = SimComm(2)
    comm._record("fault_drop", 0, 1, "halo", 64)
    report = check_comm(comm)
    assert [f.rule for f in report.findings] == ["RES001"]
    assert "drop" in report.findings[0].message
    # the matching recovery silences it
    comm._record("recover_retry", 0, 1, "halo", 64)
    comm._record("send", 0, 1, "halo", 64)
    comm._record("recv", 0, 1, "halo", 64)
    assert check_comm(comm).ok


def test_res001_pairs_recovery_kinds_correctly():
    comm = SimComm(2)
    # a dedup does NOT repair a drop: kinds must match
    comm._record("fault_drop", 0, 1, "x", 8)
    comm._record("recover_dedup", 0, 1, "x", 8)
    report = check_comm(comm)
    assert any(f.rule == "RES001" for f in report.findings)


def test_res002_flags_unrestored_rank_failure():
    comm = SimComm(4)
    comm.record_rank_failure(3)
    report = check_comm(comm)
    assert [f.rule for f in report.findings] == ["RES002"]
    comm.record_restore(3, nbytes=1024)
    assert check_comm(comm).ok


def test_commcheck_sees_exactly_the_injected_events(reference):
    """Every fired fault appears in the log; none are left unpaired."""
    schedule = FaultSchedule(
        [
            FaultSpec(kind="drop", step=2),
            FaultSpec(kind="duplicate", step=4),
            FaultSpec(kind="delay", step=6),
        ],
        seed=5,
    )
    sim = build(schedule, RecoveryPolicy())
    sim.step(N_STEPS)
    kinds = [ev.kind for ev in sim.comm.log]
    assert kinds.count("fault_drop") == 1
    assert kinds.count("fault_duplicate") == 1
    assert kinds.count("fault_delay") == 1
    assert kinds.count("recover_retry") >= 1
    assert kinds.count("recover_dedup") >= 1
    assert kinds.count("recover_redeliver") >= 1
    check_comm(sim.comm).raise_if_failed()


# -- SAN004 and unit-level pieces --------------------------------------------

def test_san004_detects_undrained_comm():
    comm = SimComm(2)
    comm.send(0, 1, np.zeros(4, dtype=np.float64), tag="x")
    san = Sanitizer()
    with pytest.raises(Exception, match="SAN004"):
        san.check_comm_quiescent(comm, step=1)
    comm.recv(0, 1, tag="x")
    san.check_comm_quiescent(comm, step=1)  # clean after drain


def test_corrupt_payload_is_detectable_and_structural():
    rng = np.random.default_rng(0)
    payload = (np.arange(12, dtype=np.float64).reshape(4, 3), np.ones(4))
    mangled = corrupt_payload(payload, rng)
    from repro.parallel.comm import payload_checksum

    assert payload_checksum(mangled) != payload_checksum(payload)
    assert mangled[0].shape == payload[0].shape
    # the original is untouched (the retransmission buffer keeps it)
    np.testing.assert_array_equal(
        payload[0], np.arange(12, dtype=np.float64).reshape(4, 3)
    )


def test_fault_spec_validation():
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="meteor", step=1)
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="rank_failure", step=1)  # needs a rank
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="delay", step=1, delay=0)


def test_injector_skips_corrupt_on_empty_payload():
    schedule = FaultSchedule([FaultSpec(kind="corrupt", step=0)], seed=1)
    injector = FaultInjector(schedule)
    injector.begin_step(0)
    assert injector.on_send(0, 1, "halo", np.empty(0)) is None
    assert not schedule.fired()  # still armed for a payload with bytes
    action = injector.on_send(0, 1, "particles", np.ones(3))
    assert action is not None and action[0] == "corrupt"
    assert schedule.fired()
