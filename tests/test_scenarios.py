"""Smoke and physics tests for the packaged scenarios (reduced sizes)."""

import numpy as np
import pytest

from repro.constants import MeV, c, fs, um
from repro.exceptions import ConfigurationError
from repro.scenarios.hybrid_target import (
    HybridTargetSetup,
    build_hybrid_target,
)
from repro.scenarios.lwfa import build_lwfa
from repro.scenarios.uniform_plasma import build_uniform_plasma


def tiny_setup(**overrides):
    kw = dict(
        cells_per_wavelength=5,
        x_max=16 * um,
        y_half=4 * um,
        gas_lo=3 * um,
        gas_hi=10 * um,
        solid_lo=10 * um,
        solid_hi=11.5 * um,
        a0=2.5,
        duration=6 * fs,
        waist=2.5 * um,
        solid_nc=20.0,
    )
    kw.update(overrides)
    return HybridTargetSetup(**kw)


def test_uniform_plasma_builder():
    sim, electrons = build_uniform_plasma((16, 16), ppc=2)
    assert electrons.n == 16 * 16 * 4  # ppc=2 means 2 per axis
    sim.step(3)
    assert np.all(np.isfinite(sim.grid.fields["Ex"]))


def test_lwfa_builder_runs_and_wake_forms():
    sim, electrons, laser = build_lwfa(
        domain_size=(24 * um, 16 * um),
        cells_per_wavelength=8,
        waist=3 * um,
        duration=6 * fs,
        a0=2.0,
    )
    # run until the pulse is inside the gas
    sim.run_until(laser.t_peak + 10 * um / c)
    ex = sim.grid.interior_view("Ex")
    # a longitudinal wakefield has appeared (GV/m scale)
    assert np.max(np.abs(ex)) > 1e9
    assert np.all(np.isfinite(ex))


def test_hybrid_setup_validation():
    with pytest.raises(ConfigurationError):
        HybridTargetSetup(gas_lo=10 * um, gas_hi=5 * um)
    with pytest.raises(ConfigurationError):
        build_hybrid_target(tiny_setup(), mode="quantum")


def test_hybrid_setup_derived_times_ordered():
    s = tiny_setup()
    assert s.reflection_time() < s.patch_removal_time() < s.window_start_time()
    assert s.solid_density > 1e27  # tens of critical densities


def test_hybrid_modes_grid_sizes():
    s = tiny_setup()
    sim_mr, _, _ = build_hybrid_target(s, mode="mr", subcycle=False)
    sim_hi, _, _ = build_hybrid_target(s, mode="highres")
    sim_co, _, _ = build_hybrid_target(s, mode="coarse")
    assert sim_hi.grid.n_cells[0] == 2 * sim_mr.grid.n_cells[0]
    assert sim_co.grid.n_cells == sim_mr.grid.n_cells
    assert len(sim_mr.patches) == 1
    # without subcycling, mr and highres share the fine time step and the
    # coarse reference is 2x larger
    assert sim_mr.dt == pytest.approx(sim_hi.dt)
    assert sim_co.dt == pytest.approx(2 * sim_mr.dt, rel=1e-6)
    # with subcycling (the default) the MR run advances at the coarse CFL
    sim_sub, _, _ = build_hybrid_target(s, mode="mr", subcycle=True)
    assert sim_sub.dt == pytest.approx(2 * sim_mr.dt, rel=1e-6)
    assert sim_sub.patches[0].subcycle


def test_hybrid_ppc4_matches_mr_particle_count_scale():
    s = tiny_setup()
    sim_mr, solid_mr, gas_mr = build_hybrid_target(s, mode="mr")
    sim_b, solid_b, gas_b = build_hybrid_target(s, mode="highres_ppc4")
    n_mr = solid_mr.n + gas_mr.n
    n_b = solid_b.n + gas_b.n
    assert n_b == pytest.approx(n_mr, rel=0.3)


def test_hybrid_mr_run_reflects_and_accelerates():
    """End-to-end physics: the pulse reflects, the patch is removed, the
    window moves backward, and solid electrons gain MeV-scale energy."""
    s = tiny_setup()
    sim, solid, gas = build_hybrid_target(s, mode="mr")
    gamma0 = solid.gamma().max()
    # run past patch removal
    sim.run_until(s.patch_removal_time() + 2 * sim.dt)
    assert len(sim.patches) == 0
    assert len(sim.removal_log) == 1
    # run a little with the moving window
    sim.run_until(s.window_start_time() + 4 * fs)
    assert sim.grid.lo[0] < 0.0  # window moved backward
    assert np.all(np.isfinite(sim.grid.fields["Ey"]))
    assert solid.gamma().max() > gamma0 + 1.0  # MeV-scale acceleration
    from repro.diagnostics.beam import beam_charge

    assert beam_charge(solid, energy_threshold=0.1 * MeV) > 0.0


def test_pwfa_builder_and_wake():
    """Beam-driven wakefield: the drive bunch rings up a wake at the
    wavebreaking-field scale and loses energy doing the work."""
    from repro.constants import plasma_frequency
    from repro.scenarios.pwfa import (
        build_pwfa,
        cold_wavebreaking_field,
        wake_amplitude,
    )

    n0 = 1e24
    sim, beam, plasma = build_pwfa(plasma_density=n0, n_cells=(64, 48))
    e0 = cold_wavebreaking_field(n0)
    assert e0 == pytest.approx(9.6e10, rel=0.02)
    gamma0 = beam.gamma().mean()
    period = 2 * np.pi / plasma_frequency(n0)
    sim.run_until(0.6 * period)
    amp = wake_amplitude(sim)
    # an overdense driver excites a wake of order the wavebreaking field
    assert 0.3 * e0 < amp < 5.0 * e0
    # the driver pays for it
    assert beam.gamma().mean() < gamma0
    assert np.all(np.isfinite(sim.grid.fields["Ex"]))


def test_pwfa_validation():
    from repro.scenarios.pwfa import build_pwfa
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        build_pwfa(beam_gamma=0.5)


def test_pwfa_poisson_initialization_nonzero():
    """The bunch starts with its self-field, not E = 0."""
    from repro.scenarios.pwfa import build_pwfa

    sim, beam, plasma = build_pwfa(n_cells=(48, 32))
    ey = sim.grid.interior_view("Ey")
    assert np.abs(ey).max() > 1e8  # the bunch's transverse space charge
