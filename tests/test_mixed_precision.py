"""Float32 mixed-precision mode (the paper's Table III "MP" rows):
grid precision switching, dtype preservation through the gather/deposit
and solver hot paths, the per-kernel float32 error budget asserted by
``validate_kernel_set``, explicit dtype threading through the PSATD
spectral pipeline, and the ``Simulation``/``MRSimulation`` precision
policy plumbing."""

import numpy as np
import pytest

from repro.constants import c, m_e, plasma_wavelength, q_e
from repro.core.simulation import Simulation
from repro.exceptions import ConfigurationError, PrecisionError
from repro.grid.boundary import apply_periodic
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.psatd import PSATDMaxwellSolver
from repro.grid.yee import YeeGrid
from repro.particles import kernels as kernels_mod
from repro.particles.deposit import (
    deposit_charge,
    deposit_current_esirkepov,
)
from repro.particles.gather import gather_fields
from repro.particles.injection import UniformProfile
from repro.particles.kernels import (
    FLOAT32_ERROR_BUDGET,
    available_kernel_variants,
    validate_kernel_set,
)
from repro.particles.species import Species

FIELD_COMPONENTS = ("Ex", "Ey", "Ez", "Bx", "By", "Bz",
                    "Jx", "Jy", "Jz", "rho")


def make_grid(ndim, n=10, guards=5, dtype=np.float64):
    grid = YeeGrid((n,) * ndim, (0.0,) * ndim, (float(n),) * ndim,
                   guards=guards)
    if dtype is not np.float64:
        grid.set_precision(dtype)
    return grid


# -- grid precision switching ------------------------------------------------

def test_set_precision_converts_every_field():
    grid = make_grid(2)
    grid.fields["Ex"][...] = 1.25
    grid.set_precision(np.float32)
    assert grid.dtype == np.float32
    for comp in FIELD_COMPONENTS:
        assert grid.fields[comp].dtype == np.float32, comp
    assert float(grid.fields["Ex"][0, 0]) == 1.25  # exactly representable
    grid.set_precision(np.float64)
    assert grid.dtype == np.float64
    for comp in FIELD_COMPONENTS:
        assert grid.fields[comp].dtype == np.float64, comp


def test_set_precision_rejects_non_float():
    grid = make_grid(1)
    with pytest.raises(ConfigurationError):
        grid.set_precision(np.int32)
    with pytest.raises(ConfigurationError):
        grid.set_precision(np.complex128)


def test_geometry_stays_double_on_float32_grid():
    grid = make_grid(2, dtype=np.float32)
    for comp in ("Ex", "Bz", "rho"):
        assert grid.axis_coords(0, comp).dtype == np.float64


# -- dtype preservation through the kernel hot path --------------------------

def rand_particles(grid, n=50, seed=2):
    rng = np.random.default_rng(seed)
    lo = np.asarray(grid.lo) + 2.0
    hi = np.asarray(grid.hi) - 2.0
    pos = lo + (hi - lo) * rng.random((n, grid.ndim))
    vel = rng.standard_normal((n, 3))
    wts = 1.0 + rng.random(n)
    return pos, vel, wts


@pytest.mark.parametrize("ndim", [1, 2, 3])
def test_deposits_preserve_float32_fields(ndim):
    grid = make_grid(ndim, dtype=np.float32)
    pos, vel, wts = rand_particles(grid)
    deposit_charge(grid, pos, wts, charge=-q_e, order=2)
    deposit_current_esirkepov(grid, pos, pos + 0.25, vel, wts,
                              charge=-q_e, dt=0.1, order=2)
    for comp in ("rho", "Jx", "Jy", "Jz"):
        assert grid.fields[comp].dtype == np.float32, comp


def test_gather_from_float32_grid_returns_double():
    grid = make_grid(2, dtype=np.float32)
    rng = np.random.default_rng(0)
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        grid.fields[comp][...] = rng.standard_normal(
            grid.shape).astype(np.float32)
    pos, _, _ = rand_particles(grid)
    e, b = gather_fields(grid, pos, order=2)
    # particle-side quantities stay DP under the mixed-precision policy
    assert e.dtype == np.float64 and b.dtype == np.float64
    assert np.all(np.isfinite(e)) and np.all(np.isfinite(b))


def test_maxwell_fdtd_preserves_float32():
    grid = make_grid(2, n=16, guards=2, dtype=np.float32)
    grid.fields["Ey"][...] = np.float32(1e-3)
    solver = MaxwellSolver(grid, dt=0.9 * cfl_dt(grid.dx))
    for _ in range(3):
        solver.step()
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        assert grid.fields[comp].dtype == np.float32, comp


# -- float32 error budget ----------------------------------------------------

def budget_variants():
    names = ["reference", "vectorized", "tiled"]
    if "compiled" in available_kernel_variants():
        names.append("compiled")
    return names


@pytest.mark.parametrize("name", budget_variants())
@pytest.mark.parametrize("ndim", [1, 2, 3])
def test_float32_within_documented_budget(name, ndim):
    errors = validate_kernel_set(name, ndim=ndim, order=2,
                                 precision="float32")
    for kernel, err in errors.items():
        assert err <= FLOAT32_ERROR_BUDGET[kernel], (kernel, err)


def test_budget_breach_raises_precision_error(monkeypatch):
    tight = {k: 1.0e-12 for k in FLOAT32_ERROR_BUDGET}
    monkeypatch.setattr(kernels_mod, "FLOAT32_ERROR_BUDGET", tight)
    with pytest.raises(PrecisionError):
        validate_kernel_set("tiled", ndim=2, order=2, precision="float32")


def test_float64_validation_unchanged_by_precision_param():
    a = validate_kernel_set("tiled", ndim=2, order=2)
    b = validate_kernel_set("tiled", ndim=2, order=2, precision="float64")
    assert a == b


def test_validate_rejects_unknown_precision():
    with pytest.raises(ConfigurationError, match="precision"):
        validate_kernel_set("tiled", precision="float16")


# -- PSATD explicit dtype threading ------------------------------------------

def plane_wave_grid(n=32, wavelengths=4, dtype=np.float64):
    length = 1.0
    g = YeeGrid((n,), (0.0,), (length,), guards=2)
    if dtype is not np.float64:
        g.set_precision(dtype)
    k = 2 * np.pi * wavelengths / length
    x_e = g.axis_coords(0, "Ey")
    x_b = g.axis_coords(0, "Bz")
    g.interior_view("Ey")[...] = np.sin(k * x_e).astype(g.dtype)
    g.interior_view("Bz")[...] = (np.sin(k * x_b) / c).astype(g.dtype)
    apply_periodic(g, 0)
    return g, k


def test_psatd_dtype_threading_float32():
    g, _ = plane_wave_grid(dtype=np.float32)
    solver = PSATDMaxwellSolver(g, dt=2.0 * cfl_dt(g.dx))
    assert solver.rdtype == np.float32
    assert solver.cdtype == np.complex64
    for tab in solver._phase.values():
        assert tab.dtype == np.complex64
    for _ in range(3):
        solver.step()
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        assert g.fields[comp].dtype == np.float32, comp
        assert np.all(np.isfinite(g.fields[comp]))


def test_psatd_dtype_threading_float64_unchanged():
    g, _ = plane_wave_grid()
    solver = PSATDMaxwellSolver(g, dt=2.0 * cfl_dt(g.dx))
    assert solver.rdtype == np.float64
    assert solver.cdtype == np.complex128
    for tab in solver._phase.values():
        assert tab.dtype == np.complex128


def test_psatd_float32_plane_wave_advects():
    """The spectral push stays physically correct in single precision —
    same dispersion test as the float64 suite, at float32 tolerance."""
    g, k = plane_wave_grid(n=32, wavelengths=4, dtype=np.float32)
    dt = 3.0 * cfl_dt(g.dx)
    solver = PSATDMaxwellSolver(g, dt)
    steps = 40
    for _ in range(steps):
        solver.step()
    shift = c * steps * dt
    x_e = g.axis_coords(0, "Ey")
    expected = np.sin(k * (x_e - shift))
    np.testing.assert_allclose(g.interior_view("Ey"), expected, atol=5e-5)


# -- Simulation / MRSimulation precision policy ------------------------------

def build_sim(**kwargs):
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((16,), (0.0,), (length,), guards=4)
    sim = Simulation(
        g, dt=cfl_dt((length / 16,), 0.9), shape_order=2,
        smoothing_passes=0, **kwargs,
    )
    sim.add_species(Species("electrons", charge=-q_e, mass=m_e, ndim=1),
                    profile=UniformProfile(n0), ppc=4)
    return sim


def test_simulation_mixed_precision_runs_finite():
    sim = build_sim(precision="mixed")
    assert sim.precision == "mixed"
    assert sim.grid.dtype == np.float32
    sim.step(3)
    for comp in ("Ex", "Jx", "rho"):
        arr = sim.grid.fields[comp]
        assert arr.dtype == np.float32, comp
        assert np.all(np.isfinite(arr)), comp
    # particle state stays double
    assert sim.species["electrons"].positions.dtype == np.float64


def test_simulation_default_inherits_grid_dtype():
    sim = build_sim()
    assert sim.precision == "float64"
    assert sim.grid.dtype == np.float64
    n0 = 1e24
    length = plasma_wavelength(n0)
    g32 = YeeGrid((16,), (0.0,), (length,), guards=4)
    g32.set_precision(np.float32)
    sim32 = Simulation(g32, dt=cfl_dt((length / 16,), 0.9))
    assert sim32.precision == "mixed"
    assert sim32.grid.dtype == np.float32


def test_simulation_rejects_unknown_precision():
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((16,), (0.0,), (length,), guards=4)
    with pytest.raises(ConfigurationError, match="precision"):
        Simulation(g, dt=cfl_dt((length / 16,), 0.9), precision="half")


def test_mixed_vs_double_trajectories_track():
    sim32 = build_sim(precision="mixed")
    sim64 = build_sim(precision="float64")
    sim32.step(5)
    sim64.step(5)
    p32 = sim32.species["electrons"].positions
    p64 = sim64.species["electrons"].positions
    scale = np.max(np.abs(p64))
    assert np.max(np.abs(p32 - p64)) / scale < 1e-4


def test_mr_simulation_mixed_precision_smoke():
    from repro.core.mr_simulation import MRSimulation

    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((16, 16), (0.0, 0.0), (length, length), guards=4)
    dx = length / 16
    sim = MRSimulation(
        g, dt=cfl_dt((dx, dx), 0.9), shape_order=2, smoothing_passes=0,
        precision="mixed",
    )
    sim.add_patch((4, 4), (12, 12), subcycle=True)
    assert sim.grid.dtype == np.float32
    sim.step(2)
    for comp in ("Ex", "Jx"):
        assert sim.grid.fields[comp].dtype == np.float32
        assert np.all(np.isfinite(sim.grid.fields[comp]))
