"""Property tests for the B-spline shape factors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.particles.shapes import bspline, required_guards, shape_weights

ORDERS = [1, 2, 3]


@pytest.mark.parametrize("order", ORDERS)
def test_bspline_support(order):
    half = (order + 1) / 2.0
    s = np.linspace(-4, 4, 1001)
    vals = bspline(order, s)
    assert np.all(vals[np.abs(s) > half] == 0.0)
    assert np.all(vals[np.abs(s) < half - 1e-9] > 0.0)


@pytest.mark.parametrize("order", ORDERS)
def test_bspline_symmetry_and_peak(order):
    s = np.linspace(0, 3, 301)
    np.testing.assert_allclose(bspline(order, s), bspline(order, -s))
    assert bspline(order, np.array([0.0]))[0] == max(
        bspline(order, np.linspace(-2, 2, 401))
    )


@pytest.mark.parametrize("order", ORDERS)
def test_bspline_unit_integral(order):
    s = np.linspace(-3, 3, 60001)
    integral = np.trapezoid(bspline(order, s), s)
    assert integral == pytest.approx(1.0, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(
    order=st.sampled_from(ORDERS),
    x=st.floats(5.0, 20.0, allow_nan=False),
)
def test_partition_of_unity(order, x):
    """sum_j B_o(j - x) = 1 for any particle position."""
    j = np.arange(0, 30)
    total = bspline(order, j - x).sum()
    assert total == pytest.approx(1.0, abs=1e-12)


@settings(max_examples=60, deadline=None)
@given(
    order=st.sampled_from(ORDERS),
    x=st.floats(5.0, 20.0, allow_nan=False),
)
def test_shape_weights_match_bspline(order, x):
    """The tabulated stencil weights are exactly B_o(j - x)."""
    i0, w = shape_weights(np.array([x]), order)
    for k in range(order + 1):
        expected = bspline(order, (i0[0] + k) - x)
        assert w[0, k] == pytest.approx(float(expected), abs=1e-12)


@settings(max_examples=60, deadline=None)
@given(
    order=st.sampled_from(ORDERS),
    x=st.floats(5.0, 20.0, allow_nan=False),
)
def test_shape_weights_sum_to_one(order, x):
    _, w = shape_weights(np.array([x]), order)
    assert w.sum() == pytest.approx(1.0, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    order=st.sampled_from(ORDERS),
    x=st.floats(5.0, 20.0, allow_nan=False),
)
def test_shape_weights_first_moment(order, x):
    """The stencil reproduces the particle position as its centroid
    (exact for orders >= 1: B-splines reproduce linears)."""
    i0, w = shape_weights(np.array([x]), order)
    centroid = sum(w[0, k] * (i0[0] + k) for k in range(order + 1))
    assert centroid == pytest.approx(x, abs=1e-10)


def test_shape_weights_vectorized_matches_scalar():
    rng = np.random.default_rng(2)
    xs = rng.uniform(5, 15, size=50)
    for order in ORDERS:
        i0, w = shape_weights(xs, order)
        for p in range(len(xs)):
            i0p, wp = shape_weights(xs[p : p + 1], order)
            assert i0p[0] == i0[p]
            np.testing.assert_allclose(wp[0], w[p])


def test_required_guards():
    assert required_guards(1) == 2
    assert required_guards(2) == 2
    assert required_guards(3) == 3


def test_unsupported_order_raises():
    with pytest.raises(ConfigurationError):
        bspline(5, np.array([0.0]))
    with pytest.raises(ConfigurationError):
        shape_weights(np.array([0.0]), 0)
