"""Tests for the network model, weak/strong scaling and the FOM."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.perfmodel.fom import (
    FOM_HISTORY,
    figure_of_merit,
    final_history_entries,
    model_fom,
)
from repro.perfmodel.machines import MACHINES, WEAK_SCALING_ANCHORS, get_machine
from repro.perfmodel.network import NetworkModel, halo_surface_bytes, neighbor_fraction
from repro.perfmodel.scaling import (
    default_node_counts,
    efficiency_at,
    strong_scaling,
    weak_scaling,
)


def test_neighbor_fraction_saturates_at_27_ranks():
    assert neighbor_fraction(1) < neighbor_fraction(8) < neighbor_fraction(27)
    assert neighbor_fraction(27) == pytest.approx(1.0)
    assert neighbor_fraction(1000) == 1.0


def test_halo_surface_scales_subvolumetrically():
    small = halo_surface_bytes(1e6)
    big = halo_surface_bytes(8e6)
    assert big / small < 8.0  # surface grows slower than volume
    assert big > small


def test_weak_scaling_hits_paper_anchors():
    """The calibrated model reproduces the Fig. 5 end points exactly."""
    for key, anchor in WEAK_SCALING_ANCHORS.items():
        records = weak_scaling(key, node_counts=[1, anchor["nodes"]])
        assert records[-1]["efficiency"] == pytest.approx(
            anchor["efficiency"], abs=0.02
        )


def test_weak_scaling_monotone_after_early_dip():
    records = weak_scaling("frontier")
    effs = [r["efficiency"] for r in records]
    assert effs[0] == 1.0
    assert all(e2 <= e1 + 1e-9 for e1, e2 in zip(effs, effs[1:]))


def test_summit_early_drop_mechanism():
    """Fig. 5: Summit loses ~15% from 2 to 8 nodes because neighbor pairs
    grow until the 27-rank pattern completes."""
    records = weak_scaling("summit", node_counts=[2, 8])
    drop = 1.0 - records[-1]["efficiency"] / records[0]["efficiency"]
    assert 0.05 < drop < 0.25


def test_strong_scaling_efficiency_loss_per_decade():
    """Fig. 5 right: about 30% efficiency loss over a decade of nodes."""
    total_cells = 512 * 4096**2  # a Summit-sized fixed problem
    records = strong_scaling("summit", total_cells, node_counts=[512, 5120])
    eff = records[-1]["efficiency"]
    assert 0.4 < eff < 0.95


def test_strong_scaling_granularity_floor():
    records = strong_scaling(
        "summit", total_cells=128**3 * 24, node_counts=[4, 400]
    )
    # 24 blocks of 128^3: 4 nodes (24 devices) is exactly 1 block/device;
    # 400 nodes cannot be fed
    assert records[0]["feasible"]
    assert not records[-1]["feasible"]


def test_strong_scaling_validation():
    with pytest.raises(ConfigurationError):
        strong_scaling("summit", total_cells=-1.0)


def test_default_node_counts_span_machine():
    m = get_machine("fugaku")
    counts = default_node_counts(m)
    assert counts[0] == 1
    assert counts[-1] == m.max_nodes_used


def test_efficiency_at_picks_closest():
    records = [{"nodes": 1, "efficiency": 1.0}, {"nodes": 100, "efficiency": 0.5}]
    assert efficiency_at(records, 90) == 0.5


def test_figure_of_merit_formula():
    fom = figure_of_merit(1e9, 1e9, avg_time_per_step=1.0, percent_of_system=1.0)
    assert fom == pytest.approx(1e9)  # 0.1 + 0.9 weights sum to 1
    with pytest.raises(ConfigurationError):
        figure_of_merit(1e9, 1e9, 0.0, 1.0)
    with pytest.raises(ConfigurationError):
        figure_of_merit(1e9, 1e9, 1.0, 1.5)


def test_fom_history_table4():
    assert len(FOM_HISTORY) == 19
    assert FOM_HISTORY[0]["machine"] == "cori"
    assert FOM_HISTORY[-1] == {
        "date": "7/22",
        "machine": "frontier",
        "nc_per_node": 8.1e8,
        "nodes": 8576,
        "mode": "dp",
        "fom": 1.1e13,
    }
    finals = final_history_entries()
    assert all(e["machine"] != "cori" for e in finals)


def test_model_fom_matches_paper_within_2x():
    """The model reproduces every final Table IV entry within a factor 2
    and preserves the machine ordering."""
    cases = [
        ("frontier", 8.1e8, 8576, "dp", True, 1.1e13),
        ("summit", 2.0e8, 4263, "dp", True, 3.4e12),
        ("perlmutter", 4.4e8, 1088, "dp", True, 1.0e12),
        ("fugaku", 3.1e6, 152064, "mp", True, 9.3e12),
    ]
    modeled = {}
    for machine, nc, nodes, mode, opt, paper in cases:
        fom = model_fom(machine, nc, nodes, mode=mode, optimized=opt)
        modeled[machine] = fom
        assert 0.5 < fom / paper < 2.0, (machine, fom, paper)
    assert (
        modeled["frontier"]
        > modeled["fugaku"]
        > modeled["summit"]
        > modeled["perlmutter"]
    )


def test_network_model_collective_coeff_nonnegative():
    for key in MACHINES:
        model = NetworkModel(get_machine(key))
        assert model._collective_coeff >= 0.0
        assert model.step_time(100) > model.t_compute
