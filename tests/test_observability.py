"""Unit coverage for repro.observability: tracer spans + export formats,
the metrics registry's snapshot/delta semantics, report rendering, and
the trace-summarizing CLI."""

import io
import json

import numpy as np
import pytest

from repro.diagnostics.timers import Timers
from repro.exceptions import ObservabilityError
from repro.observability.cli import main as cli_main
from repro.observability.cli import render_summary, summarize_spans
from repro.observability.metrics import (
    MetricsRegistry,
    comm_matrix_from_snapshot,
    metric_id,
    parse_metric_id,
)
from repro.observability.report import (
    RunReport,
    StepReport,
    percentiles,
    render_comm_matrix,
)
from repro.observability.tracer import (
    NULL_TRACER,
    SpanRecord,
    Tracer,
    _NULL_SPAN,
    build_tree,
    phase_span,
    read_jsonl,
)


# -- tracer ------------------------------------------------------------------

def make_step_trace():
    """One step with two phases, one nested kernel and an instant marker."""
    t = Tracer(enabled=True)
    with t.span("step", cat="step", step=0):
        with t.span("gather", species="electrons"):
            with t.span("interp", cat="kernel"):
                pass
        with t.span("push"):
            pass
        t.instant("lb_event", boxes_moved=2)
    return t


def tree_shape(spans):
    """(name, sorted child names) pairs — the structural fingerprint."""
    children = build_tree(list(spans))
    by_id = {r.sid: r for r in spans}
    return sorted(
        (r.name, sorted(c.name for c in children.get(r.sid, [])))
        for r in spans
    ), {r.sid: by_id[r.sid].name for r in spans}


def test_disabled_tracer_is_noop_and_allocation_free():
    t = Tracer(enabled=False)
    assert t.span("x") is _NULL_SPAN
    assert t.span("y") is t.span("z")  # one shared no-op object
    with t.span("x"):
        pass
    t.instant("marker")
    t.add_metrics_snapshot({"a": 1})
    assert t.records == []
    assert t.metric_records == []
    assert NULL_TRACER.enabled is False


def test_span_nesting_records_parent_links():
    t = make_step_trace()
    by_name = {r.name: r for r in t.records}
    assert by_name["step"].parent == -1
    assert by_name["gather"].parent == by_name["step"].sid
    assert by_name["interp"].parent == by_name["gather"].sid
    assert by_name["push"].parent == by_name["step"].sid
    assert by_name["lb_event"].parent == by_name["step"].sid
    assert by_name["lb_event"].cat == "instant"
    assert by_name["lb_event"].duration == 0.0
    assert by_name["gather"].attrs == {"species": "electrons"}
    # children exit before parents, so their intervals nest
    assert by_name["step"].start <= by_name["gather"].start
    assert by_name["gather"].end <= by_name["step"].end


def test_tracer_default_rank_is_stamped():
    t = Tracer(enabled=True, rank=3)
    with t.span("step", cat="step"):
        pass
    with t.span("other", rank=1):
        pass
    assert [r.rank for r in t.records] == [3, 1]


def test_clear_empties_tracer():
    t = make_step_trace()
    t.add_metrics_snapshot({"m": 1}, step=1)
    t.clear()
    assert t.records == [] and t.metric_records == []


def test_phase_span_feeds_timer_and_trace():
    timers, tracer = Timers(), Tracer(enabled=True)
    with phase_span(timers, tracer, "maxwell", level=0):
        pass
    assert timers.counts["maxwell"] == 1
    assert tracer.records[-1].name == "maxwell"
    assert tracer.records[-1].attrs == {"level": 0}


def test_jsonl_round_trip_preserves_span_tree(tmp_path):
    t = make_step_trace()
    t.add_metrics_snapshot({"lb.imbalance": 1.25}, step=5)
    path = str(tmp_path / "trace.jsonl")
    t.to_jsonl(path)

    spans, metrics = read_jsonl(path)
    assert tree_shape(spans)[0] == tree_shape(t.records)[0]
    assert len(spans) == len(t.records)
    for orig, back in zip(t.records, spans):
        assert back.name == orig.name and back.cat == orig.cat
        assert back.duration == pytest.approx(orig.duration)
        assert back.attrs == orig.attrs
    assert metrics == [
        {"kind": "metrics", "step": 5, "ts": pytest.approx(metrics[0]["ts"]),
         "data": {"lb.imbalance": 1.25}}
    ]


def test_read_jsonl_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("{not json\n")
    with pytest.raises(ObservabilityError, match="invalid JSON"):
        read_jsonl(str(path))


def test_read_jsonl_rejects_unknown_kind(tmp_path):
    path = tmp_path / "odd.jsonl"
    path.write_text('{"kind": "mystery"}\n')
    with pytest.raises(ObservabilityError, match="unknown trace record kind"):
        read_jsonl(str(path))


def test_span_record_from_dict_rejects_missing_fields():
    with pytest.raises(ObservabilityError, match="malformed span record"):
        SpanRecord.from_dict({"kind": "span", "sid": 0})


def test_chrome_export_is_valid_trace_event_json(tmp_path):
    t = Tracer(enabled=True)
    with t.span("step", cat="step", rank=2, step=0):
        pass
    t.instant("checkpoint", rank=2)
    path = str(tmp_path / "trace.json")
    t.to_chrome(path)

    with open(path) as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    assert [e["ph"] for e in events] == ["X", "i"]
    step = events[0]
    assert step["name"] == "step" and step["pid"] == 2 and step["tid"] == 2
    assert step["dur"] >= 0.0 and step["args"] == {"step": 0}
    assert events[1]["s"] == "p" and "dur" not in events[1]


def test_build_tree_orphans_become_roots():
    recs = [SpanRecord(7, 99, "orphan", "phase", 0.0, 1.0)]
    assert [r.name for r in build_tree(recs)[-1]] == ["orphan"]


# -- metrics -----------------------------------------------------------------

def test_counter_rejects_negative_and_inc_aliases_add():
    m = MetricsRegistry()
    c = m.counter("events")
    c.inc()
    c.add(2.0)
    assert c.value == 3.0
    with pytest.raises(ObservabilityError, match="only go up"):
        c.add(-1)


def test_gauge_set_and_add():
    g = MetricsRegistry().gauge("imbalance")
    g.set(1.5)
    g.add(-0.25)
    assert g.value == 1.25


def test_histogram_summary():
    h = MetricsRegistry().histogram("msg_size")
    for v in (4.0, 2.0, 6.0):
        h.observe(v)
    assert h.to_value() == {
        "count": 3, "sum": 12.0, "min": 2.0, "max": 6.0, "mean": 4.0
    }


def test_empty_histogram_is_all_zeros():
    assert MetricsRegistry().histogram("empty").to_value()["count"] == 0


def test_registry_identity_ignores_label_order():
    m = MetricsRegistry()
    a = m.counter("comm.bytes", src=0, dst=1)
    b = m.counter("comm.bytes", dst=1, src=0)
    assert a is b
    assert m.counter("comm.bytes", src=1, dst=0) is not a
    assert len(m) == 2
    assert "comm.bytes" in m and "other" not in m


def test_registry_kind_conflict_raises():
    m = MetricsRegistry()
    m.counter("x")
    with pytest.raises(ObservabilityError, match="already registered as counter"):
        m.gauge("x")


def test_metric_id_round_trip():
    mid = metric_id("comm.pair_bytes", {"src": 0, "dst": 1})
    assert mid == "comm.pair_bytes{dst=1,src=0}"  # labels sort
    assert parse_metric_id(mid) == ("comm.pair_bytes", {"dst": "1", "src": "0"})
    assert parse_metric_id("plain") == ("plain", {})
    with pytest.raises(ObservabilityError):
        parse_metric_id("bad{unclosed")
    with pytest.raises(ObservabilityError):
        parse_metric_id("bad{novalue}")


def test_snapshot_and_delta_semantics():
    m = MetricsRegistry()
    m.counter("pushed").add(100)
    m.gauge("live").set(50)
    m.histogram("cost").observe(2.0)
    snap = m.snapshot()
    assert snap["pushed"] == 100.0
    assert snap["live"] == 50.0
    assert snap["cost"]["count"] == 1

    m.counter("pushed").add(25)
    m.gauge("live").set(40)
    m.histogram("cost").observe(4.0)
    m.counter("fresh").add(7)
    d = m.delta(snap)
    assert d["pushed"] == 25.0          # counters diff
    assert d["live"] == 40.0            # gauges report current
    assert d["cost"] == {"count": 1, "sum": 4.0}
    assert d["fresh"] == 7.0            # absent from previous -> full value


def test_dump_json_is_loadable(tmp_path):
    m = MetricsRegistry()
    m.counter("a", k="v").add(1)
    path = str(tmp_path / "metrics.json")
    m.dump_json(path)
    with open(path) as fh:
        assert json.load(fh) == {"a{k=v}": 1.0}


def test_comm_matrix_from_snapshot():
    m = MetricsRegistry()
    m.counter("comm.pair_bytes", src=0, dst=1).add(1024)
    m.counter("comm.pair_bytes", src=1, dst=0).add(512)
    m.counter("unrelated").add(9)
    matrix = comm_matrix_from_snapshot(m.snapshot())
    assert matrix == [[0.0, 1024.0], [512.0, 0.0]]
    padded = comm_matrix_from_snapshot(m.snapshot(), n_ranks=3)
    assert len(padded) == 3 and padded[0][1] == 1024.0
    with pytest.raises(ObservabilityError, match="bad comm.pair_bytes"):
        comm_matrix_from_snapshot({"comm.pair_bytes{src=x}": 1.0})


# -- report ------------------------------------------------------------------

def test_percentiles_empty_and_known():
    assert percentiles([]) == {"p50": 0.0, "p90": 0.0, "p99": 0.0}
    pct = percentiles(list(range(1, 101)))
    assert pct["p50"] == pytest.approx(50.5)
    assert pct["p99"] > pct["p90"] > pct["p50"]


def test_step_report_share_of_median():
    s = StepReport(4, wall=0.2, p50=0.1)
    assert s.index == 4 and s.share_of_p50 == pytest.approx(2.0)
    assert StepReport(0, 0.1, 0.0).share_of_p50 == 0.0


def make_run_timers():
    t = Timers()
    t.add("maxwell", 0.5)
    t.add("gather", 0.3)
    t.step_times.extend([0.01, 0.02, 0.01, 0.05])
    return t


def test_run_report_from_timers_render():
    report = RunReport.from_timers(make_run_timers())
    assert report.slowest_steps(1)[0].index == 3
    text = report.render()
    assert "== run report ==" in text
    assert "steps: 4" in text
    assert "p50=" in text and "p99=" in text
    assert "slowest steps: #3" in text
    assert "maxwell" in text and "us/call" in text
    # no distributed extras without comm/load data
    assert "rank balance" not in text and "comm bytes" not in text


def test_render_comm_matrix_humanizes_bytes():
    text = render_comm_matrix(np.array([[0.0, 2048.0], [100.0, 0.0]]))
    assert "2.0KiB" in text and "100B" in text
    assert "total 2.1KiB" in text and "hottest pair 2.0KiB" in text


# -- CLI ---------------------------------------------------------------------

def write_demo_trace(tmp_path):
    t = Tracer(enabled=True)
    for step in range(3):
        with t.span("step", cat="step", rank=0, step=step):
            with t.span("gather", rank=0):
                pass
            with t.span("maxwell", rank=0):
                pass
    t.add_metrics_snapshot(
        {"comm.pair_bytes{dst=1,src=0}": 2048.0, "lb.imbalance": 1.2}, step=2
    )
    path = str(tmp_path / "run.jsonl")
    t.to_jsonl(path)
    return t, path


def test_summarize_spans_self_excludes_children():
    tracer = Tracer(enabled=True)
    with tracer.span("step", cat="step"):
        with tracer.span("gather"):
            pass
    agg = summarize_spans(tracer.records)
    step, gather = agg["step"], agg["gather"]
    assert step["calls"] == 1 and gather["calls"] == 1
    assert step["self"] == pytest.approx(step["total"] - gather["total"])
    assert step["cat"] == "step"


def test_cli_renders_summary(tmp_path, capsys):
    _, path = write_demo_trace(tmp_path)
    rc = cli_main([path])
    out = capsys.readouterr().out
    assert rc == 0
    assert "trace: 9 spans, 1 snapshots" in out
    assert "top spans (by self time):" in out
    assert "per-rank step time:" in out
    assert "comm bytes (src -> dst):" in out
    assert "load-imbalance timeline" in out


def test_cli_tree_and_rank_filter(tmp_path):
    _, path = write_demo_trace(tmp_path)
    stream = io.StringIO()
    assert cli_main([path, "--tree", "--rank", "0"], stream=stream) == 0
    out = stream.getvalue()
    assert "span hierarchy" in out and "step" in out
    stream = io.StringIO()
    assert cli_main([path, "--rank", "7"], stream=stream) == 0
    assert "trace: 0 spans" in stream.getvalue()


def test_cli_missing_file_and_bad_trace(tmp_path):
    stream = io.StringIO()
    assert cli_main([str(tmp_path / "absent.jsonl")], stream=stream) == 2
    assert "cannot read trace" in stream.getvalue()
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    stream = io.StringIO()
    assert cli_main([str(bad)], stream=stream) == 2
    assert "invalid JSON" in stream.getvalue()


def test_render_summary_on_empty_trace():
    assert render_summary([], []) == "trace: 0 spans, 0 snapshots"
