"""Unit tests for the finite-difference stencils."""

import numpy as np

from repro.grid.stencils import CURL_TERMS, diff_backward, diff_forward, curl_term


def test_forward_diff_linear_ramp_exact():
    x = np.linspace(0.0, 10.0, 21)
    arr = 3.0 * x
    out = diff_forward(arr, 0, dx=0.5)
    np.testing.assert_allclose(out[:-1], 3.0, rtol=1e-12)
    assert out[-1] == 0.0


def test_backward_diff_linear_ramp_exact():
    x = np.linspace(0.0, 10.0, 21)
    arr = 3.0 * x
    out = diff_backward(arr, 0, dx=0.5)
    np.testing.assert_allclose(out[1:], 3.0, rtol=1e-12)
    assert out[0] == 0.0


def test_diff_along_second_axis():
    a = np.zeros((4, 6))
    a[:] = np.arange(6.0) ** 2
    out = diff_forward(a, 1, dx=1.0)
    expected = np.diff(np.arange(6.0) ** 2)
    np.testing.assert_allclose(out[:, :-1], np.broadcast_to(expected, (4, 5)))


def test_diff_out_parameter_reused():
    arr = np.arange(10.0)
    scratch = np.full(10, 99.0)
    out = diff_forward(arr, 0, 1.0, out=scratch)
    assert out is scratch
    np.testing.assert_allclose(out[:-1], 1.0)
    assert out[-1] == 0.0


def test_curl_terms_table_is_consistent():
    # every E component is driven by B sources and vice versa, each term
    # differentiates along an axis transverse to the component
    for comp, terms in CURL_TERMS.items():
        for source, axis, sign in terms:
            assert source[0] != comp[0]
            assert abs(sign) == 1.0
            assert "xyz"[axis] != comp[1]


def test_curl_term_drops_missing_axes():
    fields = {name: np.zeros(8) for name in ("Ex", "Ey", "Ez", "Bx", "By", "Bz")}
    fields["Bz"][:] = np.arange(8.0)
    # In 1D, dEy/dt takes -c^2 dBz/dx (axis 0 kept), dBx/dz dropped
    out = curl_term(fields, "Ey", ndim=1, dx=(2.0,))
    np.testing.assert_allclose(out[1:], -0.5)
    # Ex has no 1D curl term at all
    out = curl_term(fields, "Ex", ndim=1, dx=(2.0,))
    np.testing.assert_allclose(out, 0.0)
