"""Integration tests of the single-level PIC cycle: Langmuir oscillation,
energy conservation, laser injection, moving window, boundaries."""

import numpy as np
import pytest

from repro.constants import c, m_e, plasma_frequency, q_e, um, fs
from repro.core.moving_window import MovingWindow
from repro.core.simulation import Simulation, smooth_binomial
from repro.exceptions import ConfigurationError
from repro.grid.yee import YeeGrid
from repro.laser.antenna import LaserAntenna
from repro.laser.profiles import GaussianLaser
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def test_construction_validation():
    g = YeeGrid((16,), (0.0,), (1.0,), guards=4)
    with pytest.raises(ConfigurationError):
        Simulation(g, pusher="rk4")
    with pytest.raises(ConfigurationError):
        Simulation(g, deposition="zigzag")
    with pytest.raises(ConfigurationError):
        Simulation(g, boundaries="magic")
    with pytest.raises(ConfigurationError):
        Simulation(g, boundaries=("periodic", "periodic"))
    g2 = YeeGrid((16,), (0.0,), (1.0,), guards=2)
    with pytest.raises(ConfigurationError):
        Simulation(g2, shape_order=3)  # needs more guards


def test_smooth_binomial_flattens_spike():
    arr = np.zeros(9)
    arr[4] = 1.0
    smooth_binomial(arr, 0, passes=1)
    np.testing.assert_allclose(arr[3:6], [0.25, 0.5, 0.25])
    assert arr.sum() == pytest.approx(1.0)


def test_duplicate_species_rejected():
    g = YeeGrid((16,), (0.0,), (1.0,), guards=4)
    sim = Simulation(g)
    sim.add_species(Species("e", ndim=1))
    with pytest.raises(ConfigurationError):
        sim.add_species(Species("e", ndim=1))
    with pytest.raises(ConfigurationError):
        sim.add_species(Species("e2", ndim=2))


def langmuir_sim(n0=1.0e24, n_cells=64, ppc=16, u0=1e-3):
    """1D uniform plasma with a sinusoidal velocity perturbation."""
    from repro.constants import plasma_wavelength

    length = plasma_wavelength(n0)
    g = YeeGrid((n_cells,), (0.0,), (length,), guards=4)
    sim = Simulation(g, shape_order=2, boundaries="periodic", smoothing_passes=0)
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=ppc)
    k = 2 * np.pi / length
    e.momenta[:, 0] = u0 * np.sin(k * e.positions[:, 0])
    return sim, e, length


def test_langmuir_oscillation_frequency():
    """The plasma oscillates at omega_pe — the canonical PIC validation."""
    n0 = 1.0e24
    sim, electrons, length = langmuir_sim(n0=n0)
    omega_pe = plasma_frequency(n0)
    steps = 600
    ex_hist = []
    probe = (sim.grid.guards + 16,)
    for _ in range(steps):
        sim.step()
        ex_hist.append(sim.grid.fields["Ex"][probe])
    ex_hist = np.asarray(ex_hist)
    # frequency from the FFT peak
    spectrum = np.abs(np.fft.rfft(ex_hist - ex_hist.mean()))
    freqs = np.fft.rfftfreq(steps, d=sim.dt) * 2 * np.pi
    omega_measured = freqs[np.argmax(spectrum)]
    assert omega_measured == pytest.approx(omega_pe, rel=0.1)


def test_langmuir_energy_conservation():
    sim, electrons, _ = langmuir_sim(u0=1e-3)
    from repro.diagnostics.energy import EnergyDiagnostic

    diag = EnergyDiagnostic()
    diag.record(sim.time, sim.grid, [electrons])
    sim.step(300)
    diag.record(sim.time, sim.grid, [electrons])
    # Boris + Yee leapfrog is not exactly energy conserving; a few percent
    # over 300 steps at CFL 0.95 is the expected bound (no secular growth)
    assert diag.relative_drift() < 0.05


def test_thermal_plasma_stable():
    """A warm uniform plasma stays quiet (no numerical heating blow-up)."""
    n0 = 1e24
    from repro.constants import plasma_wavelength

    length = plasma_wavelength(n0)
    g = YeeGrid((32,), (0.0,), (length,), guards=4)
    sim = Simulation(g, shape_order=3, smoothing_passes=1)
    e = Species("e", ndim=1)
    sim.add_species(
        e, profile=UniformProfile(n0), ppc=32, temperature_uth=0.01,
        rng=np.random.default_rng(21),
    )
    ke0 = e.kinetic_energy()
    sim.step(200)
    assert e.kinetic_energy() < 1.5 * ke0


def laser_sim(n_cells=512, length=40 * um, boundaries="damped", **laser_kw):
    g = YeeGrid((n_cells,), (0.0,), (length,), guards=4)
    sim = Simulation(g, shape_order=2, boundaries=boundaries, n_absorber=24)
    kw = dict(
        wavelength=0.8 * um, a0=1.0, waist=10 * um, duration=5 * fs, t_peak=15 * fs
    )
    kw.update(laser_kw)
    laser = GaussianLaser(**kw)
    sim.add_laser(LaserAntenna(laser, position=5 * um))
    return sim, laser


def test_laser_antenna_amplitude_and_speed():
    sim, laser = laser_sim()
    # run until the peak should sit at x = 25 um
    t_target = laser.t_peak + 20 * um / c
    sim.run_until(t_target)
    sl = sim.grid.valid_slices("Ey")[0]
    ey = sim.grid.Ey[sl]
    x = sim.grid.axis_coords(0, "Ey")
    peak_amp = np.max(np.abs(ey))
    assert peak_amp == pytest.approx(laser.e_peak, rel=0.2)
    # the pulse peak sits near 25 um (antenna at 5 um + 20 um of flight);
    # use the argmax, not a centroid, which the residual backward-emitted
    # half near the absorber would bias
    peak_pos = float(x[np.argmax(np.abs(ey))])
    assert peak_pos == pytest.approx(25 * um, abs=1.5 * um)


def test_moving_window_keeps_pulse_in_domain():
    sim, laser = laser_sim()
    sim.set_moving_window(MovingWindow(speed=c, start_time=laser.t_peak))
    sim.run_until(laser.t_peak + 60 * um / c)  # would exit a static domain
    sl = sim.grid.valid_slices("Ey")[0]
    ey = sim.grid.Ey[sl]
    assert np.max(np.abs(ey)) > 0.5 * laser.e_peak
    # the domain has moved
    assert sim.grid.lo[0] > 50 * um


def test_moving_window_requires_non_pml_x():
    g = YeeGrid((64,), (0.0,), (1.0,), guards=4)
    sim = Simulation(g, boundaries="pml")
    with pytest.raises(ConfigurationError):
        sim.set_moving_window(MovingWindow())


def test_moving_window_continuous_injection():
    n0 = 1e24
    g = YeeGrid((64,), (0.0,), (64 * um,), guards=4)
    sim = Simulation(g, boundaries="damped")
    e = Species("e", ndim=1)
    sim.add_species(
        e, profile=UniformProfile(n0), ppc=2, continuous_injection=True
    )
    n_before = e.n
    sim.set_moving_window(MovingWindow(speed=c, start_time=0.0))
    sim.step(40)
    # plasma is culled on the left and re-injected on the right: the count
    # stays near the initial fill
    assert e.n == pytest.approx(n_before, rel=0.05)
    assert e.positions[:, 0].max() > 64 * um  # fresh plasma in new cells


def test_open_boundary_removes_particles():
    g = YeeGrid((16,), (0.0,), (16.0,), guards=4)
    sim = Simulation(g, boundaries="open", smoothing_passes=0)
    e = Species("e", ndim=1)
    sim.add_species(e)
    e.add_particles([[15.9]], momenta=[[10.0, 0.0, 0.0]])  # fast, rightward
    sim.step(5)
    assert e.n == 0


def test_periodic_boundary_wraps_particles():
    g = YeeGrid((16,), (0.0,), (16.0,), guards=4)
    sim = Simulation(g, boundaries="periodic", smoothing_passes=0)
    e = Species("e", ndim=1)
    sim.add_species(e)
    e.add_particles([[15.99]], momenta=[[1e-3, 0.0, 0.0]])
    sim.step(50)
    assert e.n == 1
    assert 0.0 <= e.positions[0, 0] < 16.0


def test_sort_interval_runs():
    g = YeeGrid((16, 16), (0, 0), (16.0, 16.0), guards=4)
    sim = Simulation(g, sort_interval=2, smoothing_passes=0)
    e = Species("e", ndim=2)
    sim.add_species(e, profile=UniformProfile(1e20), ppc=2)
    sim.step(4)
    assert "sort" in sim.timers.totals


def test_timers_populated():
    g = YeeGrid((16,), (0.0,), (16.0,), guards=4)
    sim = Simulation(g)
    sim.step(2)
    for key in ("gather", "push", "deposit", "maxwell"):
        assert key not in sim.timers.totals or sim.timers.totals[key] >= 0.0
    assert "maxwell" in sim.timers.totals
    assert len(sim.timers.step_times) == 2
