"""Tests for Box index-space arithmetic and domain chopping."""

import numpy as np
import pytest

from repro.exceptions import DecompositionError
from repro.parallel.box import Box, chop_domain


def test_box_shape_and_cells():
    b = Box((0, 2), (4, 8))
    assert b.shape == (4, 6)
    assert b.n_cells == 24
    assert b.ndim == 2
    assert b.center() == (2.0, 5.0)


def test_box_validation():
    with pytest.raises(DecompositionError):
        Box((0, 0), (0, 4))
    with pytest.raises(DecompositionError):
        Box((0,), (4, 4))


def test_contains_cell():
    b = Box((2, 2), (4, 4))
    assert b.contains_cell((2, 3))
    assert not b.contains_cell((4, 3))


def test_intersect():
    a = Box((0, 0), (4, 4))
    b = Box((2, 2), (6, 6))
    inter = a.intersect(b)
    assert inter == Box((2, 2), (4, 4))
    assert a.intersect(Box((4, 0), (8, 4))) is None


def test_grown_and_shifted():
    b = Box((2, 2), (4, 4))
    assert b.grown(1) == Box((1, 1), (5, 5))
    assert b.shifted((10, 0)) == Box((12, 2), (14, 4))


def test_adjacency():
    a = Box((0, 0), (4, 4))
    b = Box((4, 0), (8, 4))   # face neighbour
    d = Box((6, 6), (8, 8))   # distant
    assert a.is_adjacent(b, guards=1)
    assert not a.is_adjacent(d, guards=1)


def test_chop_domain_tiles_exactly():
    boxes = chop_domain((33, 16), max_grid_size=8)
    # 33 -> 5 segments, 16 -> 2
    assert len(boxes) == 5 * 2
    total = sum(b.n_cells for b in boxes)
    assert total == 33 * 16
    for b in boxes:
        assert all(s <= 8 for s in b.shape)


def test_chop_domain_single_box():
    boxes = chop_domain((8, 8), max_grid_size=16)
    assert boxes == [Box((0, 0), (8, 8))]


def test_chop_domain_validation():
    with pytest.raises(DecompositionError):
        chop_domain((8,), max_grid_size=0)


def test_chop_3d_counts():
    boxes = chop_domain((16, 16, 16), max_grid_size=8)
    assert len(boxes) == 8
    assert all(b.shape == (8, 8, 8) for b in boxes)
