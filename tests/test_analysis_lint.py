"""One pass/fail fixture pair per lint rule, plus driver and CLI behavior."""

import os

import pytest

from repro.analysis.cli import main
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.linter import (
    collect_pragmas,
    lint_paths,
    registered_rules,
)
from repro.exceptions import AnalysisError

SRC_REPRO = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)


def lint_snippet(tmp_path, name, source, select=None):
    path = tmp_path / name
    path.write_text(source)
    return lint_paths([str(path)], select=select)


def rule_ids(findings):
    return [f.rule for f in findings]


# -- PIC001: per-particle loops in hot modules -----------------------------

def test_pic001_flags_per_particle_loop(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "deposit.py",
        "def kernel(positions):\n"
        "    for p in range(positions.shape[0]):\n"
        "        pass\n",
        select=["PIC001"],
    )
    assert rule_ids(findings) == ["PIC001"]
    assert findings[0].line == 2


def test_pic001_flags_loop_over_assigned_count(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "gather.py",
        "def kernel(x):\n"
        "    n = x.shape[0]\n"
        "    for p in range(n):\n"
        "        pass\n",
        select=["PIC001"],
    )
    assert rule_ids(findings) == ["PIC001"]


def test_pic001_allows_chunked_and_vectorized(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "pusher.py",
        "def kernel(x):\n"
        "    n = x.shape[0]\n"
        "    for start in range(0, n, 4096):\n"
        "        pass\n"
        "    for d in range(3):\n"
        "        pass\n",
        select=["PIC001"],
    )
    assert findings == []


def test_pic001_ignores_non_hot_modules(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "diagnostics.py",
        "def slow(x):\n"
        "    for p in range(x.shape[0]):\n"
        "        pass\n",
        select=["PIC001"],
    )
    assert findings == []


def test_pic001_pragma_on_def_suppresses(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "deposit.py",
        "def reference(x):  # repro: allow(PIC001)\n"
        "    for p in range(x.shape[0]):\n"
        "        pass\n",
        select=["PIC001"],
    )
    assert findings == []


# -- PIC002: explicit dtype -------------------------------------------------

def test_pic002_flags_missing_dtype(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "alloc.py",
        "import numpy as np\n"
        "a = np.zeros((4, 4))\n"
        "b = np.empty(3)\n",
        select=["PIC002"],
    )
    assert rule_ids(findings) == ["PIC002", "PIC002"]
    assert [f.line for f in findings] == [2, 3]


def test_pic002_accepts_keyword_and_positional_dtype(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "alloc.py",
        "import numpy as np\n"
        "a = np.zeros((4, 4), dtype=np.float64)\n"
        "b = np.empty(3, np.float32)\n"
        "c = np.zeros_like(a)\n",
        select=["PIC002"],
    )
    assert findings == []


# -- PIC003: exception discipline -------------------------------------------

def test_pic003_flags_builtin_raises(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "mod.py",
        "def f(x):\n"
        "    if x:\n"
        "        raise ValueError('bad')\n"
        "    raise RuntimeError\n",
        select=["PIC003"],
    )
    assert rule_ids(findings) == ["PIC003", "PIC003"]
    assert "ValueError" in findings[0].message


def test_pic003_allows_repro_errors_and_reraise(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "mod.py",
        "from repro.exceptions import ConfigurationError\n"
        "def f(x):\n"
        "    try:\n"
        "        raise ConfigurationError('bad')\n"
        "    except ConfigurationError:\n"
        "        raise\n"
        "def g():\n"
        "    raise NotImplementedError\n",
        select=["PIC003"],
    )
    assert findings == []


def test_pic003_protocol_exceptions_only_in_dunders(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "mod.py",
        "class A:\n"
        "    def __getattr__(self, name):\n"
        "        raise AttributeError(name)\n"
        "    def lookup(self, name):\n"
        "        raise KeyError(name)\n",
        select=["PIC003"],
    )
    assert rule_ids(findings) == ["PIC003"]
    assert findings[0].line == 5


# -- PIC004: wall-clock discipline ------------------------------------------

def test_pic004_flags_direct_clock_reads(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "kernel.py",
        "import time\n"
        "import time as _t\n"
        "from time import perf_counter\n"
        "a = time.time()\n"
        "b = _t.perf_counter()\n"
        "c = perf_counter()\n",
        select=["PIC004"],
    )
    assert rule_ids(findings) == ["PIC004"] * 3
    assert [f.line for f in findings] == [4, 5, 6]


def test_pic004_exempts_the_timers_module(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "timers.py",
        "import time\n"
        "now = time.perf_counter()\n",
        select=["PIC004"],
    )
    assert findings == []


# -- PIC005: __all__ consistency --------------------------------------------

def test_pic005_flags_phantom_export(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "mod.py",
        "def real():\n"
        "    pass\n"
        "__all__ = ['real', 'phantom']\n",
        select=["PIC005"],
    )
    assert rule_ids(findings) == ["PIC005"]
    assert "phantom" in findings[0].message


def test_pic005_flags_unlisted_reexport_in_init(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text(
        "from collections import OrderedDict, defaultdict\n"
        "__all__ = ['OrderedDict']\n"
    )
    findings = lint_paths([str(pkg)], select=["PIC005"])
    assert rule_ids(findings) == ["PIC005"]
    assert "defaultdict" in findings[0].message


def test_pic005_flags_init_without_dunder_all(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("from collections import OrderedDict\n")
    findings = lint_paths([str(pkg)], select=["PIC005"])
    assert rule_ids(findings) == ["PIC005"]
    assert "no literal __all__" in findings[0].message


def test_pic005_resolves_repro_internal_imports(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text(
        "from repro.sub import thing\n"
        "__all__ = ['thing']\n"
    )
    (pkg / "sub.py").write_text("other = 1\n")
    findings = lint_paths([str(pkg)], select=["PIC005"])
    assert any(
        f.rule == "PIC005" and "does not define 'thing'" in f.message
        for f in findings
    )


def test_pic005_passes_consistent_init(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text(
        "from repro.sub import thing\n"
        "__all__ = ['thing']\n"
    )
    (pkg / "sub.py").write_text("thing = 1\n")
    assert lint_paths([str(pkg)], select=["PIC005"]) == []


# -- PIC006: untimed kernel-phase calls in step drivers ----------------------

def test_pic006_flags_untimed_kernel_call_in_driver(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "simulation.py",
        "class Sim:\n"
        "    def _step_body(self):\n"
        "        fields = self._gather(self.sp)\n",
        select=["PIC006"],
    )
    assert rule_ids(findings) == ["PIC006"]
    assert "_gather()" in findings[0].message
    assert findings[0].line == 3


def test_pic006_accepts_timed_call(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "distributed.py",
        "class Sim:\n"
        "    def _finish_step(self):\n"
        "        with self.timers.timer('fold'):\n"
        "            fold_sources_global(self)\n"
        "        with self._phase('redistribute'):\n"
        "            redistribute_particles(self.per_box)\n"
        "        with self.tracer.span('box'), self.timers.stopwatch() as sw:\n"
        "            self._push_and_deposit_box(0)\n",
        select=["PIC006"],
    )
    assert findings == []


def test_pic006_timed_context_covers_nested_statements(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "simulation.py",
        "class Sim:\n"
        "    def _step_body(self):\n"
        "        with self._phase('deposit'):\n"
        "            for sp in self.species:\n"
        "                if sp.n:\n"
        "                    self._deposit(sp)\n",
        select=["PIC006"],
    )
    assert findings == []


def test_pic006_flags_untimed_call_inside_untimed_loop(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "mr_simulation.py",
        "class Sim:\n"
        "    def _advance_subcycled_patches(self):\n"
        "        for patch in self.patches:\n"
        "            self._advance_fields(patch)\n",
        select=["PIC006"],
    )
    assert rule_ids(findings) == ["PIC006"]


def test_pic006_ignores_hook_bodies_and_other_modules(tmp_path):
    # the hook method itself is exempt: its call sites are what must be timed
    findings = lint_snippet(
        tmp_path,
        "simulation.py",
        "class Sim:\n"
        "    def _gather(self, sp):\n"
        "        return gather_fields(self.grid, sp)\n",
        select=["PIC006"],
    )
    assert findings == []
    # and non-driver modules are out of scope entirely
    findings = lint_snippet(
        tmp_path,
        "helpers.py",
        "def _step_body(self):\n"
        "    self._gather(self.sp)\n",
        select=["PIC006"],
    )
    assert findings == []


def test_pic006_pragma_suppresses(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "simulation.py",
        "class Sim:\n"
        "    def _step_body(self):\n"
        "        self._gather(self.sp)  # repro: allow(PIC006)\n",
        select=["PIC006"],
    )
    assert findings == []


def test_pic006_clean_on_real_drivers():
    for rel in ("core/simulation.py", "core/mr_simulation.py",
                "parallel/distributed.py"):
        path = os.path.join(SRC_REPRO, rel)
        assert lint_paths([path], select=["PIC006"]) == []


# -- PIC007: hard-coded float64 in kernel-phase code --------------------------

def test_pic007_flags_dtype_keyword_and_positional(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "deposit.py",
        "import numpy as np\n"
        "def kernel(grid):\n"
        "    a = np.zeros(4, dtype=np.float64)\n"
        "    b = np.empty((3, 3), np.double)\n"
        "    c = np.arange(5, dtype='float64')\n"
        "    d = np.asarray(grid, float)\n",
        select=["PIC007"],
    )
    assert rule_ids(findings) == ["PIC007"] * 4
    assert [f.line for f in findings] == [3, 4, 5, 6]


def test_pic007_allows_derived_dtypes(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "gather.py",
        "import numpy as np\n"
        "def kernel(grid, arr):\n"
        "    a = np.zeros(grid.shape, dtype=grid.dtype)\n"
        "    b = np.empty_like(arr)\n"
        "    c = np.zeros(4, dtype=np.float32)\n"
        "    d = np.arange(5)\n",
        select=["PIC007"],
    )
    assert findings == []


def test_pic007_scoped_to_kernel_phase_modules(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "diagnostics.py",
        "import numpy as np\n"
        "def moments():\n"
        "    return np.zeros(4, dtype=np.float64)\n",
        select=["PIC007"],
    )
    assert findings == []


def test_pic007_tracks_numpy_alias(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "shapes.py",
        "import numpy\n"
        "def weights():\n"
        "    return numpy.ones(3, dtype=numpy.float64)\n",
        select=["PIC007"],
    )
    assert rule_ids(findings) == ["PIC007"]


def test_pic007_pragma_documents_dp_by_design(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "yee.py",
        "import numpy as np\n"
        "def coords(n):  # repro: allow(PIC007)\n"
        "    return np.arange(n, dtype=np.float64)\n"
        "def other(n):\n"
        "    return np.arange(n, dtype=np.float64)"
        "  # repro: allow(PIC007)\n",
        select=["PIC007"],
    )
    assert findings == []


def test_pic007_clean_on_real_kernel_phase_modules():
    for rel in ("particles/gather.py", "particles/deposit.py",
                "particles/shapes.py", "particles/kernels.py",
                "particles/compiled.py", "grid/yee.py", "grid/psatd.py",
                "grid/pml.py", "grid/maxwell.py", "grid/stencils.py"):
        path = os.path.join(SRC_REPRO, rel)
        assert lint_paths([path], select=["PIC007"]) == [], rel


# -- driver / pragmas / CLI --------------------------------------------------

def test_collect_pragmas_parses_rule_lists():
    pragmas = collect_pragmas(
        "x = 1  # repro: allow(PIC001, PIC004)\n"
        "y = 2  # unrelated comment\n"
    )
    assert pragmas == {1: {"PIC001", "PIC004"}}


def test_line_pragma_suppresses_finding(tmp_path):
    findings = lint_snippet(
        tmp_path,
        "alloc.py",
        "import numpy as np\n"
        "a = np.zeros(3)  # repro: allow(PIC002)\n",
        select=["PIC002"],
    )
    assert findings == []


def test_unknown_rule_id_raises():
    with pytest.raises(AnalysisError):
        lint_paths([SRC_REPRO], select=["NOPE999"])


def test_registered_rules_cover_documented_ids():
    ids = {rule.rule_id for rule in registered_rules()}
    assert {"PIC001", "PIC002", "PIC003", "PIC004", "PIC005"} <= ids


def test_sort_findings_orders_by_path_line_rule():
    unordered = [
        Finding(rule="B", message="", path="b.py", line=2),
        Finding(rule="A", message="", path="a.py", line=9),
        Finding(rule="A", message="", path="b.py", line=2),
    ]
    ordered = sort_findings(unordered)
    assert [(f.path, f.line, f.rule) for f in ordered] == [
        ("a.py", 9, "A"), ("b.py", 2, "A"), ("b.py", 2, "B"),
    ]


def test_cli_exit_codes_and_report(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\na = np.zeros(3)\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PIC002" in out and "1 error(s)" in out

    good = tmp_path / "good.py"
    good.write_text("import numpy as np\na = np.zeros(3, dtype=np.float64)\n")
    assert main([str(good)]) == 0
    assert "clean" in capsys.readouterr().out

    assert main(["--list-rules"]) == 0
    assert "PIC001" in capsys.readouterr().out

    assert main([str(tmp_path / "missing_dir")]) == 2


def test_shipped_tree_is_clean():
    """The acceptance gate: the repository's own source passes every rule."""
    assert main([SRC_REPRO, "--quiet"]) == 0


def test_findings_format_is_clickable():
    f = Finding(rule="PIC002", message="msg", path="x.py", line=7)
    assert f.format() == "x.py:7: [error] PIC002 msg"
    assert f.severity == Severity.ERROR
