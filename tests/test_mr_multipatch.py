"""Multiple refinement patches in one simulation — the paper's future-work
"adaptive collections of refinement patches"."""

import numpy as np
import pytest

from repro.constants import m_e, plasma_wavelength, q_e
from repro.core.mr_simulation import MRSimulation
from repro.grid.maxwell import cfl_dt
from repro.grid.yee import YeeGrid
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def build(n_cells=96, n0=1e24, patches=((10, 30), (60, 80)), ppc=8):
    length = plasma_wavelength(n0)
    g = YeeGrid((n_cells,), (0.0,), (length,), guards=4)
    dt = cfl_dt((length / n_cells / 2,), 0.9)
    sim = MRSimulation(g, dt=dt, shape_order=2, smoothing_passes=0)
    e = Species("e", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=ppc)
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    for lo, hi in patches:
        sim.add_patch((lo,), (hi,), ratio=2)
    return sim, e


def test_two_patches_run_and_match_reference():
    sim2, _ = build(patches=((10, 30), (60, 80)))
    sim0, _ = build(patches=())
    assert len(sim2.patches) == 2
    for _ in range(80):
        sim2.step()
        sim0.step()
    ex2 = sim2.grid.interior_view("Ex")
    ex0 = sim0.grid.interior_view("Ex")
    scale = np.max(np.abs(ex0))
    # two patches double the interface noise; ~12% pointwise after 80
    # steps of a standing oscillation is the observed level
    assert np.max(np.abs(ex2 - ex0)) < 0.2 * scale
    corr = np.corrcoef(ex2.ravel(), ex0.ravel())[0, 1]
    assert corr > 0.99


def test_patches_route_particles_independently():
    sim, e = build(patches=((10, 30), (60, 80)))
    p0, p1 = sim.patches
    e_f, _ = sim._gather(e)
    m0 = p0.interior_mask(e.positions)
    m1 = p1.interior_mask(e.positions)
    assert np.any(m0) and np.any(m1)
    assert not np.any(m0 & m1)  # disjoint regions


def test_staggered_removal_times():
    sim, _ = build(patches=())
    dt = sim.dt
    sim.add_patch((10,), (30,), remove_time=5 * dt)
    sim.add_patch((60,), (80,), remove_time=12 * dt)
    sim.step(6)
    assert len(sim.patches) == 1
    sim.step(7)
    assert len(sim.patches) == 0
    assert len(sim.removal_log) == 2
    assert np.all(np.isfinite(sim.grid.fields["Ex"]))


def test_total_fine_cells_sums_patches():
    sim, _ = build(patches=((10, 30), (60, 80)))
    assert sim.total_fine_cells() == 40 + 40


def test_mixed_subcycling():
    """One synchronous and one subcycled patch can coexist... at the fine
    CFL (the subcycled patch simply takes redundant substeps)."""
    sim, e = build(patches=())
    sim.add_patch((10,), (30,), subcycle=False)
    sim.add_patch((60,), (80,), subcycle=True)
    sim.step(20)
    assert np.all(np.isfinite(sim.grid.fields["Ex"]))
    for p in sim.patches:
        assert np.all(np.isfinite(p.fine.fields["Ex"]))
