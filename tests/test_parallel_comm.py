"""Tests for the simulated communicator and its accounting."""

import numpy as np
import pytest

from repro.exceptions import CommunicationError
from repro.parallel.comm import SimComm, payload_nbytes


def test_send_recv_roundtrip():
    comm = SimComm(4)
    data = np.arange(10.0)
    comm.send(0, 2, data, tag="x")
    out = comm.recv(0, 2, tag="x")
    np.testing.assert_array_equal(out, data)
    assert comm.pending() == 0


def test_fifo_ordering():
    comm = SimComm(2)
    comm.send(0, 1, np.array([1.0]))
    comm.send(0, 1, np.array([2.0]))
    assert comm.recv(0, 1)[0] == 1.0
    assert comm.recv(0, 1)[0] == 2.0


def test_recv_missing_raises():
    comm = SimComm(2)
    with pytest.raises(CommunicationError):
        comm.recv(0, 1)


def test_rank_validation():
    comm = SimComm(2)
    with pytest.raises(CommunicationError):
        comm.send(0, 5, np.zeros(1))
    with pytest.raises(CommunicationError):
        SimComm(0)


def test_byte_accounting():
    comm = SimComm(3)
    comm.send(1, 2, np.zeros(100))  # 800 bytes
    assert comm.bytes_sent[1] == 800
    assert comm.messages_sent[1] == 1
    assert comm.pair_bytes[(1, 2)] == 800
    assert comm.total_bytes() == 800
    comm.recv(1, 2)
    comm.reset_counters()
    assert comm.total_bytes() == 0


def test_allreduce_accounting():
    comm = SimComm(8)
    out = comm.allreduce_sum(np.ones(4))
    np.testing.assert_array_equal(out, 1.0)
    assert comm.collective_calls == 1
    # log2(8) = 3 rounds of 32 bytes on every rank
    assert np.all(comm.bytes_sent == 3 * 32)


def test_payload_nbytes():
    assert payload_nbytes(np.zeros(5)) == 40
    assert payload_nbytes((np.zeros(2), np.zeros(3))) == 40
    assert payload_nbytes({"a": np.zeros(1)}) == 8
    assert payload_nbytes(3.5) == 8


def test_pinned_memory_spill_accounting():
    """Sec. V.A.2: buffer spikes spill to pinned memory instead of failing."""
    comm = SimComm(2, device_buffer_bytes=100)
    comm.send(0, 1, np.zeros(10))  # 80 bytes: fits
    assert comm.spilled_messages == 0
    comm.send(0, 1, np.zeros(10))  # would exceed the 100-byte buffer
    assert comm.spilled_messages == 1
    assert comm.spilled_bytes == 80
    # delivery still works for spilled messages
    np.testing.assert_array_equal(comm.recv(0, 1), np.zeros(10))
    np.testing.assert_array_equal(comm.recv(0, 1), np.zeros(10))
    # buffer space was released by the first recv
    comm.send(0, 1, np.zeros(10))
    assert comm.spilled_messages == 1


def test_unlimited_buffer_never_spills():
    comm = SimComm(2)
    for _ in range(50):
        comm.send(0, 1, np.zeros(1000))
    assert comm.spilled_messages == 0
