"""Tests for the Lorentz-boosted-frame utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import c, fs, um
from repro.core.boosted_frame import BoostedFrame
from repro.exceptions import ConfigurationError
from repro.laser.profiles import GaussianLaser


def test_construction():
    bf = BoostedFrame(gamma=10.0)
    assert bf.beta == pytest.approx(np.sqrt(1 - 1e-2))
    bf2 = BoostedFrame(beta=0.6)
    assert bf2.gamma == pytest.approx(1.25)
    with pytest.raises(ConfigurationError):
        BoostedFrame()
    with pytest.raises(ConfigurationError):
        BoostedFrame(gamma=2.0, beta=0.5)
    with pytest.raises(ConfigurationError):
        BoostedFrame(gamma=0.5)
    with pytest.raises(ConfigurationError):
        BoostedFrame(beta=1.0)


@settings(max_examples=50, deadline=None)
@given(
    gamma_boost=st.floats(1.0, 50.0),
    ux=st.floats(-20.0, 20.0),
    uy=st.floats(-5.0, 5.0),
    uz=st.floats(-5.0, 5.0),
)
def test_mass_shell_invariance(gamma_boost, ux, uy, uz):
    """gamma_p^2 - |u|^2 = 1 in every frame."""
    bf = BoostedFrame(gamma=gamma_boost)
    u = np.array([[ux, uy, uz]])
    u_prime = bf.transform_momenta(u)
    gamma_prime = bf.transform_gamma(u)
    invariant = gamma_prime[0] ** 2 - np.sum(u_prime[0] ** 2)
    assert invariant == pytest.approx(1.0, rel=1e-9)


def test_comoving_particle_is_at_rest():
    """A particle moving with the frame has u' = 0."""
    bf = BoostedFrame(gamma=5.0)
    u_lab = np.array([[bf.gamma * bf.beta, 0.0, 0.0]])
    u_prime = bf.transform_momenta(u_lab)
    np.testing.assert_allclose(u_prime[0], 0.0, atol=1e-12)
    assert bf.transform_gamma(u_lab)[0] == pytest.approx(1.0)


def test_static_plasma_streams_backward():
    bf = BoostedFrame(gamma=3.0)
    u_prime = bf.transform_momenta(np.zeros((1, 3)))
    assert u_prime[0, 0] == pytest.approx(-bf.gamma * bf.beta)


def test_density_and_length_transform():
    bf = BoostedFrame(gamma=4.0)
    assert bf.transform_density(1e24) == pytest.approx(4e24)
    assert bf.transform_length(1.0) == pytest.approx(0.25)
    pos = bf.transform_snapshot_positions(np.array([[8.0, 2.0]]))
    np.testing.assert_allclose(pos[0], [2.0, 2.0])


def test_laser_transform_redshift():
    bf = BoostedFrame(gamma=10.0)
    laser = GaussianLaser(0.8 * um, a0=2.0, waist=5 * um, duration=10 * fs)
    boosted = bf.transform_laser(laser)
    stretch = bf.gamma * (1 + bf.beta)
    assert boosted.wavelength == pytest.approx(0.8 * um * stretch)
    assert boosted.duration == pytest.approx(10 * fs * stretch)
    assert boosted.a0 == laser.a0
    assert boosted.waist == laser.waist
    # the photon count proxy omega' tau' is frame-invariant
    assert boosted.omega * boosted.duration == pytest.approx(
        laser.omega * laser.duration
    )


def test_scale_compression_4gamma2():
    bf = BoostedFrame(gamma=10.0)
    assert bf.scale_compression() == pytest.approx(4 * 100, rel=0.01)
    # gamma = 1: no compression
    assert BoostedFrame(gamma=1.0).scale_compression() == pytest.approx(1.0)


def test_steps_estimate_orders_of_magnitude():
    """The paper quotes 'several orders of magnitude speedups': a gamma=30
    boost on a 10 cm stage gives > 3 orders."""
    bf = BoostedFrame(gamma=30.0)
    lab, boosted = bf.steps_estimate(0.1, 0.8e-6)
    assert lab / boosted > 1.0e3
    assert lab > 1e6  # the lab-frame run really is hopeless
