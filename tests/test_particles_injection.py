"""Tests for density profiles and plasma injection."""

import numpy as np
import pytest

from repro.constants import critical_density, q_e
from repro.exceptions import ConfigurationError
from repro.grid.yee import YeeGrid
from repro.particles.injection import (
    GasJetProfile,
    HybridTargetProfile,
    SlabProfile,
    UniformProfile,
    inject_plasma,
)
from repro.particles.species import Species


def make_grid(ndim=2, n=8):
    return YeeGrid((n,) * ndim, (0.0,) * ndim, (float(n),) * ndim, guards=2)


def test_uniform_profile():
    p = UniformProfile(1e24)
    pos = np.random.default_rng(0).uniform(size=(10, 2))
    np.testing.assert_allclose(p(pos), 1e24)


def test_slab_profile_with_ramp():
    p = SlabProfile(2.0, lo=4.0, hi=6.0, axis=0, ramp=2.0)
    pos = np.array([[1.0, 0], [3.0, 0], [4.5, 0], [6.5, 0]])
    np.testing.assert_allclose(p(pos), [0.0, 1.0, 2.0, 0.0])


def test_gas_jet_trapezoid():
    p = GasJetProfile(1.0, ramp_up=(0.0, 2.0), plateau_end=6.0, ramp_down_end=8.0)
    pos = np.array([[x, 0.0] for x in [-1.0, 1.0, 4.0, 7.0, 9.0]])
    np.testing.assert_allclose(p(pos), [0.0, 0.5, 1.0, 0.5, 0.0])
    with pytest.raises(ConfigurationError):
        GasJetProfile(1.0, ramp_up=(2.0, 1.0), plateau_end=6.0, ramp_down_end=8.0)


def test_hybrid_target_combines_solid_and_gas():
    nc = critical_density(0.8e-6)
    p = HybridTargetProfile(
        n_solid=50 * nc,
        solid_lo=6.0,
        solid_hi=7.0,
        n_gas=0.001 * nc,
        gas_lo=0.0,
        gas_hi=6.0,
    )
    pos = np.array([[3.0, 0.0], [6.5, 0.0], [7.5, 0.0]])
    dens = p(pos)
    assert dens[0] == pytest.approx(0.001 * nc)
    assert dens[1] == pytest.approx(50 * nc)
    assert dens[2] == 0.0


def test_profile_sum_operator():
    p = UniformProfile(1.0) + UniformProfile(2.0)
    np.testing.assert_allclose(p(np.zeros((3, 2))), 3.0)


def test_inject_uniform_counts_and_weights():
    g = make_grid(ndim=2, n=8)
    s = Species("e", ndim=2)
    n0 = 1.0e24
    n_inj = inject_plasma(s, g, UniformProfile(n0), ppc=(2, 2))
    assert n_inj == 8 * 8 * 4
    # total physical particles = n0 * volume
    assert s.weights.sum() == pytest.approx(n0 * 64.0, rel=1e-12)
    # all particles inside the domain
    assert s.positions.min() >= 0.0 and s.positions.max() < 8.0


def test_inject_respects_subregion():
    g = make_grid(ndim=2, n=8)
    s = Species("e", ndim=2)
    inject_plasma(s, g, UniformProfile(1.0), ppc=1, lo=(2.0, 0.0), hi=(4.0, 8.0))
    assert np.all(s.positions[:, 0] >= 2.0)
    assert np.all(s.positions[:, 0] < 4.0)
    assert s.n == 2 * 8


def test_inject_skips_zero_density():
    g = make_grid(ndim=2, n=8)
    s = Species("e", ndim=2)
    inject_plasma(s, g, SlabProfile(1.0, lo=6.0, hi=8.0, axis=0), ppc=1)
    assert np.all(s.positions[:, 0] >= 6.0)
    assert s.n == 2 * 8


def test_inject_thermal_momenta():
    g = make_grid(ndim=1, n=8)
    s = Species("e", ndim=1)
    inject_plasma(
        s,
        g,
        UniformProfile(1.0),
        ppc=200,
        temperature_uth=0.1,
        rng=np.random.default_rng(13),
    )
    std = s.momenta.std(axis=0)
    np.testing.assert_allclose(std, 0.1, rtol=0.1)


def test_inject_drift():
    g = make_grid(ndim=1, n=4)
    s = Species("e", ndim=1)
    inject_plasma(s, g, UniformProfile(1.0), ppc=2, drift_u=(0.5, 0.0, 0.0))
    np.testing.assert_allclose(s.momenta[:, 0], 0.5)


def test_inject_ppc_validation():
    g = make_grid(ndim=2)
    s = Species("e", ndim=2)
    with pytest.raises(ConfigurationError):
        inject_plasma(s, g, UniformProfile(1.0), ppc=(2, 2, 2))


def test_inject_empty_region_returns_zero():
    g = make_grid(ndim=2)
    s = Species("e", ndim=2)
    assert inject_plasma(s, g, UniformProfile(1.0), ppc=1, lo=(9.0, 0.0), hi=(10.0, 1.0)) == 0
    assert s.n == 0


def test_deposited_density_matches_profile():
    """Depositing the injected particles reproduces the requested density."""
    from repro.particles.deposit import deposit_charge

    g = make_grid(ndim=2, n=8)
    s = Species("e", charge=-q_e, ndim=2)
    n0 = 3.0e25
    inject_plasma(s, g, UniformProfile(n0), ppc=(3, 3))
    deposit_charge(g, s.positions, s.weights, s.charge, order=2)
    from repro.grid.boundary import accumulate_periodic_sources

    accumulate_periodic_sources(g, 0)
    accumulate_periodic_sources(g, 1)
    rho = g.interior_view("rho")[:-1, :-1]  # unique nodes
    np.testing.assert_allclose(rho, -q_e * n0, rtol=1e-9)
