"""Tests for charge/current deposition, including the charge-conservation
property test that pins down the Esirkepov scheme at every order and
dimensionality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import c, q_e
from repro.grid.stencils import diff_backward
from repro.grid.yee import YeeGrid
from repro.particles.deposit import (
    deposit_charge,
    deposit_current_direct,
    deposit_current_esirkepov,
    deposit_current_reference,
)


def make_grid(ndim, n=10, guards=4):
    return YeeGrid((n,) * ndim, (0.0,) * ndim, (float(n),) * ndim, guards=guards)


def total_deposited_charge(grid):
    """Integral of rho over the grid (sum * cell volume)."""
    return float(grid.fields["rho"].sum()) * float(np.prod(grid.dx))


@pytest.mark.parametrize("order", [1, 2, 3])
@pytest.mark.parametrize("ndim", [1, 2, 3])
def test_charge_deposit_conserves_total(order, ndim):
    g = make_grid(ndim)
    rng = np.random.default_rng(9)
    pos = rng.uniform(2.0, 8.0, size=(30, ndim))
    w = rng.uniform(0.5, 2.0, size=30)
    deposit_charge(g, pos, w, charge=-q_e, order=order)
    assert total_deposited_charge(g) == pytest.approx(-q_e * w.sum(), rel=1e-12)


def test_charge_deposit_single_particle_order1():
    g = make_grid(1)
    deposit_charge(g, np.array([[3.25]]), np.array([1.0]), charge=1.0, order=1)
    rho = g.fields["rho"]
    assert rho[g.guards + 3] == pytest.approx(0.75)
    assert rho[g.guards + 4] == pytest.approx(0.25)


def divergence_j(grid):
    """Backward-difference divergence of J at the nodes."""
    div = np.zeros(grid.shape)
    for d, comp in enumerate(("Jx", "Jy", "Jz")[: grid.ndim]):
        div += diff_backward(grid.fields[comp], d, grid.dx[d])
    return div


@pytest.mark.parametrize("order", [1, 2, 3])
@pytest.mark.parametrize("ndim", [1, 2, 3])
def test_esirkepov_charge_conservation(order, ndim):
    """(rho1 - rho0)/dt + div J = 0 exactly, for random sub-cell moves."""
    g = make_grid(ndim)
    rng = np.random.default_rng(10 + order + ndim)
    n = 20
    pos0 = rng.uniform(3.0, 7.0, size=(n, ndim))
    disp = rng.uniform(-0.9, 0.9, size=(n, ndim))  # < 1 cell (dx = 1)
    pos1 = pos0 + disp
    w = rng.uniform(0.5, 2.0, size=n)
    vel = rng.uniform(-0.5, 0.5, size=(n, 3)) * c
    dt = 1.0e-9
    charge = -q_e

    rho0 = make_grid(ndim)
    deposit_charge(rho0, pos0, w, charge, order)
    rho1 = make_grid(ndim)
    deposit_charge(rho1, pos1, w, charge, order)
    deposit_current_esirkepov(g, pos0, pos1, vel, w, charge, dt, order)

    drho_dt = (rho1.fields["rho"] - rho0.fields["rho"]) / dt
    residual = drho_dt + divergence_j(g)
    scale = np.max(np.abs(g.fields["Jx"])) / min(g.dx) + 1e-300
    assert np.max(np.abs(residual)) < 1e-10 * scale


@pytest.mark.parametrize("ndim", [1, 2])
def test_esirkepov_total_current_sign(ndim):
    """A positive charge moving in +x deposits net positive Jx."""
    g = make_grid(ndim)
    pos0 = np.full((1, ndim), 5.0)
    pos1 = pos0.copy()
    pos1[0, 0] += 0.4
    vel = np.zeros((1, 3))
    vel[0, 0] = 0.4 / 1e-9
    deposit_current_esirkepov(g, pos0, pos1, vel, np.array([1.0]), 2.0, 1e-9, order=1)
    assert g.fields["Jx"].sum() > 0.0
    # and the integrated current equals q * v / (transverse area):
    # sum(Jx) * dV = q * w * vx
    total = g.fields["Jx"].sum() * float(np.prod(g.dx))
    assert total == pytest.approx(2.0 * 0.4 / 1e-9, rel=1e-12)


def test_esirkepov_invariant_axis_current_2d():
    """vz in 2D deposits Jz with magnitude q w vz / cell volume."""
    g = make_grid(2)
    pos = np.full((1, 2), 5.0)
    vel = np.array([[0.0, 0.0, 3.0e7]])
    deposit_current_esirkepov(g, pos, pos, vel, np.array([2.0]), -q_e, 1e-9, order=2)
    total_jz = g.fields["Jz"].sum() * float(np.prod(g.dx))
    assert total_jz == pytest.approx(-q_e * 2.0 * 3.0e7, rel=1e-12)
    assert np.max(np.abs(g.fields["Jx"])) == 0.0


def test_esirkepov_static_particle_no_current():
    g = make_grid(2)
    pos = np.array([[4.3, 5.7]])
    vel = np.zeros((1, 3))
    deposit_current_esirkepov(g, pos, pos, vel, np.array([1.0]), q_e, 1e-9, order=3)
    for comp in ("Jx", "Jy", "Jz"):
        assert np.max(np.abs(g.fields[comp])) == 0.0


@pytest.mark.parametrize("order", [1, 3])
def test_reference_matches_vectorized(order):
    g1 = make_grid(2)
    g2 = make_grid(2)
    rng = np.random.default_rng(11)
    n = 8
    pos0 = rng.uniform(3.0, 7.0, size=(n, 2))
    pos1 = pos0 + rng.uniform(-0.5, 0.5, size=(n, 2))
    vel = rng.normal(size=(n, 3)) * 1e7
    w = rng.uniform(0.5, 2.0, size=n)
    deposit_current_esirkepov(g1, pos0, pos1, vel, w, -q_e, 1e-9, order)
    deposit_current_reference(g2, pos0, pos1, vel, w, -q_e, 1e-9, order)
    for comp in ("Jx", "Jy", "Jz"):
        np.testing.assert_allclose(
            g1.fields[comp], g2.fields[comp], rtol=1e-10, atol=1e-20
        )


def test_direct_deposition_total_current():
    g = make_grid(2)
    pos = np.array([[5.0, 5.0], [3.5, 6.5]])
    vel = np.array([[1.0e7, 0.0, 0.0], [0.0, -2.0e7, 0.0]])
    w = np.array([1.0, 3.0])
    deposit_current_direct(g, pos, vel, w, charge=q_e, order=2)
    jx_total = g.fields["Jx"].sum() * float(np.prod(g.dx))
    jy_total = g.fields["Jy"].sum() * float(np.prod(g.dx))
    assert jx_total == pytest.approx(q_e * 1.0e7, rel=1e-12)
    assert jy_total == pytest.approx(q_e * 3.0 * -2.0e7, rel=1e-12)


@pytest.mark.parametrize("order", [1, 2, 3])
def test_esirkepov_wide_window_charge_conservation(order):
    """Displacements beyond one cell (subcycled MR fine grids) widen the
    stencil window; continuity must still hold exactly."""
    g = make_grid(2, guards=5)
    rng = np.random.default_rng(77)
    n = 10
    pos0 = rng.uniform(4.0, 6.0, size=(n, 2))
    pos1 = pos0 + rng.uniform(-1.9, 1.9, size=(n, 2))
    w = rng.uniform(0.5, 2.0, size=n)
    vel = np.zeros((n, 3))
    dt = 1e-9
    rho0 = make_grid(2, guards=5)
    rho1 = make_grid(2, guards=5)
    deposit_charge(rho0, pos0, w, 1.0, order)
    deposit_charge(rho1, pos1, w, 1.0, order)
    deposit_current_esirkepov(g, pos0, pos1, vel, w, 1.0, dt, order)
    residual = (rho1.fields["rho"] - rho0.fields["rho"]) / dt + divergence_j(g)
    scale = np.max(np.abs(g.fields["Jx"])) + 1e-300
    assert np.max(np.abs(residual)) < 1e-9 * scale


def test_esirkepov_insufficient_guards_raises():
    from repro.exceptions import ConfigurationError

    g = make_grid(1, guards=4)
    pos0 = np.array([[5.0]])
    pos1 = np.array([[5.0 + 3.2]])  # > 3 cells: needs a 10-point window
    with pytest.raises(ConfigurationError):
        deposit_current_esirkepov(
            g, pos0, pos1, np.zeros((1, 3)), np.ones(1), 1.0, 1e-9, order=3
        )


def test_esirkepov_empty_input_noop():
    g = make_grid(2)
    deposit_current_esirkepov(
        g,
        np.empty((0, 2)),
        np.empty((0, 2)),
        np.empty((0, 3)),
        np.empty(0),
        1.0,
        1e-9,
        order=2,
    )
    assert np.all(g.fields["Jx"] == 0.0)


@settings(max_examples=25, deadline=None)
@given(
    order=st.sampled_from([1, 2, 3]),
    x0=st.floats(3.0, 7.0),
    dxp=st.floats(-0.95, 0.95),
    w=st.floats(0.1, 10.0),
)
def test_continuity_property_1d(order, x0, dxp, w):
    """Hypothesis sweep of the 1D continuity equation."""
    g = make_grid(1)
    pos0 = np.array([[x0]])
    pos1 = np.array([[x0 + dxp]])
    vel = np.array([[dxp / 1e-9, 0.0, 0.0]])
    weights = np.array([w])
    rho0 = make_grid(1)
    rho1 = make_grid(1)
    deposit_charge(rho0, pos0, weights, 1.0, order)
    deposit_charge(rho1, pos1, weights, 1.0, order)
    deposit_current_esirkepov(g, pos0, pos1, vel, weights, 1.0, 1e-9, order)
    residual = (rho1.fields["rho"] - rho0.fields["rho"]) / 1e-9 + divergence_j(g)
    assert np.max(np.abs(residual)) < 1e-6 * (abs(w) / 1e-9)
