"""Rule coverage against the real modules the rules were written for.

Two claims, both against ``parallel/halo.py`` and ``core/load_balance.py``
rather than synthetic snippets:

* every registered lint rule (and the static schedule verifier) passes
  the shipped module — rule by rule, so a regression names its rule; and
* the rules are not vacuous there: mutating the actual module source in
  the way each rule forbids (stripping a dtype, demoting a repro error
  to a builtin, reading the wall clock) produces the expected finding.

The runtime sanitizers get the same treatment: SAN001/SAN003/SAN004 are
exercised against a real pairwise halo exchange, not a hand-built grid.
"""

import os
import re

import numpy as np
import pytest

from repro.analysis.commstatic import check_schedule
from repro.analysis.linter import lint_paths, registered_rules
from repro.analysis.sanitize import Sanitizer
from repro.exceptions import SanitizerError
from repro.grid.yee import FIELD_COMPONENTS, YeeGrid
from repro.parallel.box import chop_domain
from repro.parallel.comm import SimComm
from repro.parallel.halo import (
    assemble_global,
    exchange_halos,
    neighbor_overlaps,
)

HERE = os.path.dirname(os.path.abspath(__file__))
SRC_REPRO = os.path.join(os.path.dirname(HERE), "src", "repro")
HALO = os.path.join(SRC_REPRO, "parallel", "halo.py")
LOAD_BALANCE = os.path.join(SRC_REPRO, "core", "load_balance.py")

ALL_RULE_IDS = sorted(rule.rule_id for rule in registered_rules())


def read_source(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def rule_ids(findings):
    return [f.rule for f in findings]


# -- the shipped modules pass every rule, one rule at a time -----------------

@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_halo_module_passes_rule(rule_id):
    assert lint_paths([HALO], select=[rule_id]) == []


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_load_balance_module_passes_rule(rule_id):
    assert lint_paths([LOAD_BALANCE], select=[rule_id]) == []


def test_halo_module_schedule_verifies_standalone():
    """Both halo phases resolve and match with only halo.py in scope:
    the wrappers' tag defaults reach _run_exchange's bare parameter."""
    assert check_schedule([HALO]) == []


# -- and the rules are not vacuous on them: mutate the real source -----------

def test_stripping_dtypes_from_load_balance_trips_pic002(tmp_path):
    source = read_source(LOAD_BALANCE)
    # strip the dtype only from the allocators PIC002 governs, not from
    # np.asarray/np.full coercions that happen to name a dtype too
    pattern = re.compile(r"(np\.(?:zeros|empty)\([^)]*?), dtype=np\.\w+\)")
    mutated, n_stripped = pattern.subn(r"\1)", source)
    assert n_stripped >= 4  # the module really allocates this way
    path = tmp_path / "load_balance.py"
    path.write_text(mutated)
    findings = lint_paths([str(path)], select=["PIC002"])
    assert rule_ids(findings) == ["PIC002"] * n_stripped


def test_demoting_repro_errors_in_halo_trips_pic003(tmp_path):
    source = read_source(HALO)
    n_raises = source.count("raise DecompositionError")
    assert n_raises >= 3
    path = tmp_path / "halo.py"
    path.write_text(
        source.replace("raise DecompositionError", "raise ValueError")
    )
    findings = lint_paths([str(path)], select=["PIC003"])
    assert rule_ids(findings) == ["PIC003"] * n_raises
    assert all("ValueError" in f.message for f in findings)


def test_wall_clock_read_in_load_balance_trips_pic004(tmp_path):
    source = read_source(LOAD_BALANCE)
    path = tmp_path / "load_balance.py"
    path.write_text(source + "\nimport time\n_T0 = time.time()\n")
    findings = lint_paths([str(path)], select=["PIC004"])
    assert rule_ids(findings) == ["PIC004"]
    assert findings[0].line == len(source.splitlines()) + 3


def test_per_particle_loop_added_to_hot_copy_trips_pic001(tmp_path):
    """halo.py itself is not a hot module; the same source installed as a
    kernel module with a per-particle scan added is what PIC001 exists
    to reject."""
    source = read_source(HALO)
    appended = (
        "\ndef scan(positions):\n"
        "    for p in range(positions.shape[0]):\n"
        "        pass\n"
    )
    cold = tmp_path / "halo.py"
    cold.write_text(source + appended)
    assert lint_paths([str(cold)], select=["PIC001"]) == []
    hot = tmp_path / "gather.py"
    hot.write_text(source + appended)
    findings = lint_paths([str(hot)], select=["PIC001"])
    assert rule_ids(findings) == ["PIC001"]
    assert findings[0].line == len(source.splitlines()) + 3


def test_orphaned_send_added_to_halo_trips_comm006(tmp_path):
    source = read_source(HALO)
    path = tmp_path / "halo.py"
    path.write_text(
        source
        + "\ndef _leak(comm, payload):\n"
        + "    comm.send(0, 1, payload, tag='halo:orphan')\n"
    )
    findings = check_schedule([str(path)])
    assert "COMM006" in rule_ids(findings)
    assert any("halo:orphan" in f.message for f in findings)


# -- the sanitizers, against a real pairwise exchange ------------------------

def exchanged_setup(n=16, max_grid=8, guards=3, n_ranks=2, seed=11):
    domain = YeeGrid((n, n), (0.0, 0.0), (float(n), float(n)), guards=guards)
    boxes = chop_domain((n, n), max_grid)
    grids = []
    rng = np.random.default_rng(seed)
    for b in boxes:
        bg = YeeGrid(
            b.shape, tuple(map(float, b.lo)), tuple(map(float, b.hi)),
            guards=guards,
        )
        for comp in FIELD_COMPONENTS:
            view = bg.fields[comp][bg.valid_slices(comp)]
            view[...] = rng.uniform(-1.0, 1.0, size=view.shape)
        grids.append(bg)
    overlaps = neighbor_overlaps(
        boxes, (n, n), guards=guards, periodic_axes=(0, 1), kind="fill"
    )
    rank_of_box = [i % n_ranks for i in range(len(boxes))]
    comm = SimComm(n_ranks)
    stats = exchange_halos(
        comm, grids, boxes, overlaps, rank_of_box, guards=guards
    )
    return domain, boxes, grids, comm, stats


def test_san003_passes_on_assembled_exchange():
    domain, boxes, grids, comm, stats = exchanged_setup()
    assert stats.messages > 0
    assemble_global(
        domain, grids, boxes, FIELD_COMPONENTS, periodic_axes=(0, 1)
    )
    san = Sanitizer()
    for axis in (0, 1):
        san.check_guard_consistency(domain, axis, step=0)


def test_san003_catches_guard_scribble_after_exchange():
    domain, boxes, grids, comm, _ = exchanged_setup()
    assemble_global(
        domain, grids, boxes, FIELD_COMPONENTS, periodic_axes=(0, 1)
    )
    domain.fields["Ex"][0, 4] += 1.0  # a kernel wrote outside its region
    with pytest.raises(SanitizerError, match="SAN003"):
        Sanitizer().check_guard_consistency(domain, 0, step=0)


def test_san004_passes_on_drained_exchange_comm():
    _, _, _, comm, _ = exchanged_setup()
    assert comm.pending() == 0
    Sanitizer().check_comm_quiescent(comm, step=0)  # must not raise


def test_san004_catches_undelivered_message():
    _, _, _, comm, _ = exchanged_setup()
    comm.send(0, 1, np.zeros(4, dtype=np.float64), tag="halo:stray")
    with pytest.raises(SanitizerError, match="SAN004"):
        Sanitizer().check_comm_quiescent(comm, step=1)


def test_san001_catches_nan_carried_by_the_exchange():
    """A NaN deposited in one box's valid region crosses into a
    neighbor's guards through the exchange; SAN001 must flag the
    receiving box, not only the source."""
    domain, boxes, grids, comm, _ = exchanged_setup(seed=7)
    grids[0].fields["Ex"][grids[0].valid_slices("Ex")][0, 0] = np.nan
    overlaps = neighbor_overlaps(
        boxes, (16, 16), guards=3, periodic_axes=(0, 1), kind="fill"
    )
    exchange_halos(
        comm, grids, boxes, overlaps, [i % 2 for i in range(len(boxes))],
        guards=3,
    )
    poisoned = [
        i for i, bg in enumerate(grids)
        if not np.isfinite(bg.fields["Ex"]).all()
    ]
    assert len(poisoned) > 1  # the NaN really traveled
    san = Sanitizer()
    with pytest.raises(SanitizerError, match="SAN001"):
        for i in poisoned:
            san.check_fields_finite(grids[i], step=0, components=("Ex",))
