"""Tests for the Berenger split-field PML."""

import numpy as np
import pytest

from repro.constants import c
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.pml import PMLMaxwellSolver, pml_sigma_profile
from repro.grid.yee import YeeGrid


def gaussian_pulse_1d(n=256, center=0.5, width=0.02, guards=3):
    g = YeeGrid((n,), (0.0,), (1.0,), guards=guards)
    x = g.axis_coords(0, "Ey")
    x_b = g.axis_coords(0, "Bz")
    pulse = lambda s: np.exp(-((s - center) ** 2) / (2 * width**2))
    g.interior_view("Ey")[...] = pulse(x)
    g.interior_view("Bz")[...] = pulse(x_b) / c
    return g


def test_sigma_profile_zero_in_interior():
    g = YeeGrid((64,), (0.0,), (1.0,), guards=3)
    sig = pml_sigma_profile(g, 0, 0, n_pml=8)
    interior = sig[g.guards + 8 : g.guards + 64 - 8]
    assert np.all(interior == 0.0)
    assert sig[0] > 0 and sig[-1] > 0
    # grows monotonically outward
    assert np.all(np.diff(sig[: g.guards + 9]) <= 0)


def test_pml_reduces_to_vacuum_fdtd_in_interior():
    """With sigma = 0 everywhere the split scheme equals plain FDTD."""
    g1 = gaussian_pulse_1d(n=128)
    g2 = g1.copy()
    dt = cfl_dt(g1.dx, 0.8)
    plain = MaxwellSolver(g1, dt)
    # a PML whose axes list is empty has sigma = 0 identically
    split = PMLMaxwellSolver(g2, dt, n_pml=8, axes=())
    for _ in range(40):
        plain.step()
        split.step()
    np.testing.assert_allclose(
        g1.interior_view("Ey"), g2.interior_view("Ey"), atol=1e-12
    )


def test_pml_absorbs_outgoing_pulse():
    g = gaussian_pulse_1d(n=256, center=0.5)
    dt = cfl_dt(g.dx, 0.8)
    solver = PMLMaxwellSolver(g, dt, n_pml=12)
    e0 = g.field_energy()
    steps = int(1.5 / (c * dt))
    for _ in range(steps):
        solver.step()
    # pulse exits through the layer: residual energy is tiny
    assert g.field_energy() < 1e-4 * e0


def test_pml_outperforms_hard_wall():
    """Reflection from the PML is orders of magnitude below a bare wall."""

    def residual_energy(use_pml):
        g = gaussian_pulse_1d(n=256, center=0.75, width=0.02)
        dt = cfl_dt(g.dx, 0.8)
        solver = (
            PMLMaxwellSolver(g, dt, n_pml=12)
            if use_pml
            else MaxwellSolver(g, dt)
        )
        # run until the pulse has hit the right edge and any reflection
        # has travelled back into the interior
        steps = int(0.5 / (c * dt))
        for _ in range(steps):
            solver.step()
        sl = g.valid_slices("Ey")[0]
        interior = g.Ey[sl][20:-20]
        return float(np.sum(interior**2))

    assert residual_energy(True) < 1e-4 * residual_energy(False)


def test_pml_2d_absorbs_cylindrical_wave():
    n = 96
    g = YeeGrid((n, n), (0, 0), (1, 1), guards=3)
    x = g.axis_coords(0, "Ez")
    y = g.axis_coords(1, "Ez")
    r2 = (x[:, None] - 0.5) ** 2 + (y[None, :] - 0.5) ** 2
    g.interior_view("Ez")[...] = np.exp(-r2 / 0.001)
    dt = cfl_dt(g.dx, 0.7)
    solver = PMLMaxwellSolver(g, dt, n_pml=10)
    e0 = g.field_energy()
    steps = int(1.5 / (c * dt))
    for _ in range(steps):
        solver.step()
    assert g.field_energy() < 1e-3 * e0


def test_pml_carries_preexisting_field():
    g = gaussian_pulse_1d(n=64)
    before = g.interior_view("Ey").copy()
    PMLMaxwellSolver(g, cfl_dt(g.dx, 0.8), n_pml=8)
    np.testing.assert_allclose(g.interior_view("Ey"), before)


def test_pml_cfl_check():
    from repro.exceptions import StabilityError

    g = YeeGrid((32,), (0.0,), (1.0,), guards=2)
    with pytest.raises(StabilityError):
        PMLMaxwellSolver(g, dt=10 * cfl_dt(g.dx), n_pml=4)
