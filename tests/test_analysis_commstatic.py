"""The static schedule verifier: seeded-bug fixtures and the shipped tree."""

import os

import pytest

from repro.analysis.commstatic import check_schedule, extract_schedule

HERE = os.path.dirname(os.path.abspath(__file__))
SRC_REPRO = os.path.join(os.path.dirname(HERE), "src", "repro")
FIXTURES = os.path.join(HERE, "data", "commstatic_fixtures")


def fixture(name):
    return os.path.join(FIXTURES, name)


def findings_for(name):
    return check_schedule([fixture(name)])


def rule_ids(findings):
    return [f.rule for f in findings]


# -- each seeded bug is caught with file:line provenance ---------------------

def test_unmatched_send_is_comm006():
    findings = findings_for("unmatched_send.py")
    assert "COMM006" in rule_ids(findings)
    orphan = [f for f in findings if "orphan" in f.message]
    assert orphan and orphan[0].path.endswith("unmatched_send.py")
    assert orphan[0].line > 0
    assert "never be delivered" in orphan[0].message
    # the never-satisfied recv is the dual finding
    assert any("block forever" in f.message for f in findings)


def test_tag_collision_is_comm007():
    findings = findings_for("tag_collision.py")
    assert rule_ids(findings) == ["COMM007"]
    assert "halo:fold" in findings[0].message
    # provenance names both declaration sites
    assert "tag_collision.py" in findings[0].message
    assert findings[0].line > 0


def test_deadlocking_schedule_is_comm008():
    findings = findings_for("deadlock_schedule.py")
    assert rule_ids(findings) == ["COMM008"]
    assert "deadlock" in findings[0].message
    assert findings[0].path.endswith("deadlock_schedule.py")


def test_buffer_race_is_comm010():
    findings = findings_for("buffer_race.py")
    assert rule_ids(findings) == ["COMM010"]
    assert "alias 'scratch'" in findings[0].message
    # the finding anchors at the mutation, the message names the send line
    assert "sent at line" in findings[0].message


def test_clean_schedule_has_zero_findings():
    assert findings_for("clean_schedule.py") == []


def test_unresolvable_tag_is_a_warning(tmp_path):
    src = tmp_path / "dynamic.py"
    src.write_text(
        "def f(comm, tags, payload):\n"
        "    comm.send(0, 1, payload, tag=tags.pop())\n"
        "    comm.recv(0, 1, tag=tags.pop())\n"
    )
    findings = check_schedule([str(src)])
    assert {f.rule for f in findings} == {"COMM006"}
    assert all(f.severity == "warning" for f in findings)
    assert "unverifiable" in findings[0].message


# -- value tracking: tags resolved through constants and parameters ----------

def test_tag_propagates_through_module_constant_and_default(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text(
        "PREFIX = 'fx'\n"
        "def exchange(comm, payload, tag=PREFIX + ':halo'):\n"
        "    comm.begin_phase(tag, n_messages=1)\n"
        "    comm.send(0, 1, payload, tag=tag)\n"
        "    comm.recv(0, 1, tag=tag)\n"
        "    comm.end_phase(tag)\n"
    )
    schedule = extract_schedule([str(src)])
    assert [p.tag for p in schedule.phases] == ["fx:halo"]
    assert {f.tag for f in schedule.flows} == {"fx:halo"}
    assert check_schedule([str(src)]) == []


def test_tag_propagates_through_bare_parameter_from_callers(tmp_path):
    """The _run_exchange shape: a helper with a bare tag parameter gets
    its values from the call sites of its wrappers."""
    src = tmp_path / "mod.py"
    src.write_text(
        "def _helper(comm, payload, tag):\n"
        "    comm.send(0, 1, payload, tag=tag)\n"
        "    comm.recv(0, 1, tag=tag)\n"
        "def fold(comm, payload, tag='x:fold'):\n"
        "    _helper(comm, payload, tag)\n"
        "def fill(comm, payload, tag='x:fill'):\n"
        "    _helper(comm, payload, tag)\n"
    )
    schedule = extract_schedule([str(src)])
    send_tags = {f.tag for f in schedule.flows if f.kind == "send"}
    assert send_tags == {"x:fold", "x:fill"}
    assert check_schedule([str(src)]) == []


def test_literal_ranks_are_inferred(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text(
        "def f(comm, payload):\n"
        "    comm.send(2, 3, payload, tag='t')\n"
        "    comm.recv(2, 3, tag='t')\n"
    )
    schedule = extract_schedule([str(src)])
    send = [f for f in schedule.flows if f.kind == "send"][0]
    assert (send.src, send.dst) == (2, 3)


def test_non_comm_receivers_are_ignored(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text(
        "def f(socket, payload):\n"
        "    socket.send(0, 1, payload, tag='raw')\n"
    )
    schedule = extract_schedule([str(src)])
    assert schedule.n_sites == 0
    assert check_schedule([str(src)]) == []


def test_syntax_errors_are_skipped_not_fatal(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    (tmp_path / "ok.py").write_text(
        "def f(comm, p):\n"
        "    comm.send(0, 1, p, tag='t')\n"
        "    comm.recv(0, 1, tag='t')\n"
    )
    schedule = extract_schedule([str(tmp_path)])
    assert schedule.n_files == 1  # the broken file is the linter's problem


# -- the whole fixture directory, as CI runs it ------------------------------

def test_fixture_suite_catches_every_seeded_bug():
    findings = check_schedule([FIXTURES])
    by_file = {}
    for f in findings:
        by_file.setdefault(os.path.basename(f.path), set()).add(f.rule)
    assert by_file.get("unmatched_send.py") == {"COMM006"}
    assert by_file.get("tag_collision.py") == {"COMM007"}
    assert by_file.get("deadlock_schedule.py") == {"COMM008"}
    assert by_file.get("buffer_race.py") == {"COMM010"}
    assert "clean_schedule.py" not in by_file


# -- the shipped tree: extraction finds the real schedule and verifies clean -

def test_shipped_tree_schedule_is_clean():
    """Acceptance: zero static findings over src/repro."""
    assert check_schedule([SRC_REPRO]) == []


def test_shipped_tree_extracts_the_four_phases():
    """The extractor must see the real schedule, not vacuously pass:
    both halo phases (resolved through _run_exchange's bare tag
    parameter), particle redistribution, and LB migration."""
    schedule = extract_schedule([SRC_REPRO])
    assert schedule.tags() == [
        "halo:fields", "halo:fold", "lb:migrate", "particles",
    ]
    for phase in schedule.phases:
        assert phase.n_sends >= 1 and phase.n_recvs >= 1
    halo = [p for p in schedule.phases if p.tag.startswith("halo:")]
    assert {p.func for p in halo} == {"_run_exchange"}
    assert all(p.path.endswith("parallel/halo.py") for p in halo)
