"""Golden-trajectory regression for the LWFA scenario.

A fixed-seed (fully deterministic) small LWFA run is compared step by
step against a committed reference trajectory — per-step field energy
and particle count.  Any change to the deposition, push, solver,
boundaries, moving window or injection order shows up here as a
trajectory divergence, which is the regression net under the resilience
refactor: checkpoint/restart and fault recovery must leave the physics
*exactly* where it was.

Tolerances: the run involves only deterministic NumPy kernels, so the
trajectory is reproducible to round-off across platforms; energies are
compared at ``rtol=1e-9`` (a few ulps of headroom for BLAS/compiler
variation) and particle counts exactly.  To regenerate after an
*intentional* physics change, run this file as a script:
``PYTHONPATH=src python tests/test_resilience_golden.py``.
"""

import json
import os

import numpy as np
import pytest

from repro.constants import fs, um
from repro.scenarios.lwfa import build_lwfa

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_lwfa.json")

#: relative tolerance on per-step field energy (see module docstring)
ENERGY_RTOL = 1e-9


def run_trajectory():
    sim, electrons, _laser = build_lwfa(
        domain_size=(20.0 * um, 10.0 * um),
        cells_per_wavelength=8.0,
        ppc=(1, 1),
        window_start=5.0 * fs,
    )
    energies, counts = [], []
    for _ in range(30):
        sim.step(1)
        energies.append(sim.grid.field_energy())
        counts.append(int(electrons.n))
    return energies, counts


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as f:
        return json.load(f)


@pytest.fixture(scope="module")
def trajectory():
    return run_trajectory()


def test_field_energy_trajectory_matches_golden(golden, trajectory):
    energies, _ = trajectory
    ref = golden["field_energy_J"]
    assert len(energies) == len(ref)
    np.testing.assert_allclose(
        energies,
        ref,
        rtol=ENERGY_RTOL,
        err_msg="per-step field energy diverged from the committed "
        "golden trajectory (regenerate only for intentional physics "
        "changes: PYTHONPATH=src python tests/test_resilience_golden.py)",
    )


def test_particle_count_trajectory_matches_golden(golden, trajectory):
    _, counts = trajectory
    assert counts == golden["particle_count"]


def test_trajectory_covers_window_and_injection(golden):
    """The scenario must actually exercise the moving window: constant
    particle counts would mean the golden file locks nothing down."""
    counts = golden["particle_count"]
    assert len(set(counts)) > 1
    energies = golden["field_energy_J"]
    assert all(e > 0 for e in energies)


def test_rerun_is_deterministic(trajectory):
    """The trajectory is a pure function of the build — same run twice."""
    energies, counts = trajectory
    energies2, counts2 = run_trajectory()
    assert counts == counts2
    np.testing.assert_array_equal(energies, energies2)


if __name__ == "__main__":  # regenerate the golden file (intentional changes)
    energies, counts = run_trajectory()
    golden = {
        "scenario": {
            "domain_size_um": [20.0, 10.0],
            "cells_per_wavelength": 8.0,
            "ppc": [1, 1],
            "window_start_fs": 5.0,
            "n_steps": 30,
        },
        "field_energy_J": energies,
        "particle_count": counts,
    }
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as f:
        json.dump(golden, f, indent=2)
    print(f"regenerated {GOLDEN_PATH}")
