"""Tests for the PICMI-flavored input layer."""

import numpy as np
import pytest

import repro.picmi as picmi
from repro.constants import m_e, q_e, um
from repro.exceptions import ConfigurationError


def make_grid(bc="periodic"):
    return picmi.Cartesian2DGrid(
        number_of_cells=[16, 16],
        lower_bound=[0.0, 0.0],
        upper_bound=[16e-6, 16e-6],
        boundary_conditions=bc,
    )


def test_grid_dimensionality_checked():
    with pytest.raises(ConfigurationError):
        picmi.Cartesian3DGrid(
            number_of_cells=[8, 8],
            lower_bound=[0, 0],
            upper_bound=[1, 1],
        )


def test_species_from_particle_type():
    e = picmi.Species(name="e", particle_type="electron")
    assert e.charge == -q_e and e.mass == m_e
    p = picmi.Species(name="p", particle_type="proton")
    assert p.charge == q_e
    with pytest.raises(ConfigurationError):
        picmi.Species(name="x", particle_type="muon")
    with pytest.raises(ConfigurationError):
        picmi.Species(name="x")


def test_solver_method_validation():
    with pytest.raises(ConfigurationError):
        picmi.ElectromagneticSolver(grid=make_grid(), method="ADI")


def test_end_to_end_uniform_plasma():
    grid = make_grid()
    solver = picmi.ElectromagneticSolver(grid=grid, cfl=0.9)
    plasma = picmi.Species(
        name="electrons",
        particle_type="electron",
        initial_distribution=picmi.UniformDistribution(
            density=1e24, rms_velocity_uth=0.01
        ),
    )
    sim = picmi.Simulation(solver=solver, particle_shape=2)
    sim.add_species(
        plasma, layout=picmi.GriddedLayout(n_macroparticles_per_cell=[2, 2])
    )
    assert plasma.core is not None
    assert plasma.core.n == 16 * 16 * 4
    sim.step(5)
    assert sim.time > 0
    assert np.all(np.isfinite(sim.core.grid.fields["Ex"]))


def test_max_steps_cap():
    sim = picmi.Simulation(
        solver=picmi.ElectromagneticSolver(grid=make_grid()), max_steps=3
    )
    sim.step(10)
    assert sim.core.step_count == 3
    sim.step(10)
    assert sim.core.step_count == 3


def test_laser_and_antenna():
    grid = picmi.Cartesian2DGrid(
        number_of_cells=[32, 16],
        lower_bound=[0.0, -8e-6],
        upper_bound=[32e-6, 8e-6],
        boundary_conditions="damped",
    )
    sim = picmi.Simulation(solver=picmi.ElectromagneticSolver(grid=grid))
    laser = picmi.GaussianLaser(
        wavelength=0.8 * um, waist=4 * um, duration=5e-15, a0=1.0
    )
    sim.add_laser(laser, picmi.LaserAntenna(position=2e-6))
    sim.step(20)
    assert np.abs(sim.core.grid.fields["Ey"]).max() > 0


def test_mesh_refinement_flag():
    grid = make_grid()
    sim = picmi.Simulation(
        solver=picmi.ElectromagneticSolver(grid=grid, cfl=0.45),
        mesh_refinement=True,
    )
    patch = sim.add_mesh_refinement_patch((4, 4), (12, 12), ratio=2)
    assert patch.fine.n_cells == (16, 16)
    sim_plain = picmi.Simulation(solver=picmi.ElectromagneticSolver(grid=make_grid()))
    with pytest.raises(ConfigurationError):
        sim_plain.add_mesh_refinement_patch((4, 4), (8, 8))


def test_analytic_distribution_drift():
    from repro.particles.injection import SlabProfile

    grid = make_grid()
    sim = picmi.Simulation(solver=picmi.ElectromagneticSolver(grid=grid))
    beam = picmi.Species(
        name="beam",
        particle_type="electron",
        initial_distribution=picmi.AnalyticDistribution(
            SlabProfile(1e24, 4e-6, 8e-6, axis=0),
            directed_velocity_u=[10.0, 0.0, 0.0],
        ),
    )
    sim.add_species(beam, layout=picmi.GriddedLayout([1, 1]))
    assert np.allclose(beam.core.momenta[:, 0], 10.0)
    assert beam.core.positions[:, 0].min() >= 4e-6


def test_psatd_method():
    """PICMI method="PSATD" selects the spectral solver (periodic only)."""
    from repro.grid.psatd import PSATDMaxwellSolver

    grid = make_grid(bc="periodic")
    sim = picmi.Simulation(
        solver=picmi.ElectromagneticSolver(grid=grid, method="PSATD")
    )
    assert isinstance(sim.core.solver, PSATDMaxwellSolver)
    sim.step(3)
    assert np.all(np.isfinite(sim.core.grid.fields["Ex"]))
    # non-periodic boundaries are rejected
    with pytest.raises(ConfigurationError):
        picmi.Simulation(
            solver=picmi.ElectromagneticSolver(grid=make_grid("damped"),
                                               method="PSATD")
        )


def test_unknown_method_rejected():
    with pytest.raises(ConfigurationError):
        picmi.ElectromagneticSolver(grid=make_grid(), method="CKC")
