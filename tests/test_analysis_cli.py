"""CLI behavior: JSON output, baselines, comm-log replay, rule selection."""

import io
import json
import os

import numpy as np
import pytest

from repro.analysis.cli import main
from repro.parallel.comm import SimComm

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "data", "commstatic_fixtures")
BASELINE = os.path.join(HERE, "data", "analysis_baseline.json")


def run_cli(*argv):
    stream = io.StringIO()
    code = main(list(argv), stream=stream)
    return code, stream.getvalue()


BAD_SNIPPET = "import numpy as np\na = np.zeros(3)\n"


# -- --format json -----------------------------------------------------------

def test_json_format_emits_structured_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SNIPPET)
    code, out = run_cli(str(bad), "--format", "json")
    assert code == 1
    payload = json.loads(out)
    assert payload["tool"] == "repro.analysis"
    assert payload["errors"] == 1 and payload["warnings"] == 0
    (finding,) = payload["findings"]
    assert finding["rule"] == "PIC002"
    assert finding["severity"] == "error"
    assert finding["path"].endswith("bad.py")
    assert finding["line"] == 2
    assert "dtype" in finding["message"]


def test_json_format_clean_tree(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("import numpy as np\na = np.zeros(3, dtype=np.float64)\n")
    code, out = run_cli(str(good), "--format", "json")
    assert code == 0
    payload = json.loads(out)
    assert payload["findings"] == []
    assert payload["errors"] == payload["warnings"] == 0


def test_text_format_stays_the_default(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SNIPPET)
    code, out = run_cli(str(bad))
    assert code == 1
    with pytest.raises(json.JSONDecodeError):
        json.loads(out)
    assert "PIC002" in out


# -- --baseline --------------------------------------------------------------

def test_baseline_suppresses_known_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SNIPPET)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"findings": [{"rule": "PIC002", "path": "bad.py"}]}
    ))
    code, out = run_cli(str(bad), "--baseline", str(baseline))
    assert code == 0
    assert "clean" in out


def test_baseline_does_not_hide_new_rules(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import numpy as np\n"
        "import time\n"
        "a = np.zeros(3)\n"
        "t = time.time()\n"
    )
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(
        {"findings": [{"rule": "PIC002", "path": "bad.py"}]}
    ))
    code, out = run_cli(str(bad), "--baseline", str(baseline))
    assert code == 1
    assert "PIC004" in out and "PIC002" not in out


def test_malformed_baseline_is_an_analysis_error(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text("[1, 2, 3]")
    code, out = run_cli(str(good), "--baseline", str(baseline))
    assert code == 2
    assert "baseline" in out


def test_shipped_baseline_is_empty():
    with open(BASELINE, encoding="utf-8") as handle:
        assert json.load(handle) == {"findings": []}


# -- --comm-log replay -------------------------------------------------------

def test_comm_log_replay_flags_seeded_races(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    code, out = run_cli(
        str(good),
        "--comm-log", os.path.join(FIXTURES, "nondet_fold.commlog.jsonl"),
        "--comm-log", os.path.join(FIXTURES, "fold_race.commlog.jsonl"),
        "--comm-log", os.path.join(FIXTURES, "phase_overlap.commlog.jsonl"),
        "--format", "json",
    )
    assert code == 1
    payload = json.loads(out)
    rules = {f["rule"] for f in payload["findings"]}
    assert {"COMM007", "COMM009", "COMM010"} <= rules
    # event-index provenance: path is the log file, line the event seq
    for finding in payload["findings"]:
        assert finding["path"].endswith(".commlog.jsonl")
        assert finding["line"] >= 0


def test_comm_log_replay_of_a_recorded_clean_run(tmp_path):
    from repro.observability.commlog import write_comm_log

    comm = SimComm(2)
    comm.begin_phase("halo:fold", n_messages=1)
    comm.send(0, 1, np.zeros(4, dtype=np.float64), tag="halo:fold")
    comm.recv(0, 1, tag="halo:fold")
    comm.record_apply("halo:fold", 0)
    comm.record_apply("halo:fold", 1)
    comm.end_phase("halo:fold")
    log_path = tmp_path / "run.commlog.jsonl"
    write_comm_log(comm, str(log_path))
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    code, out = run_cli(str(good), "--comm-log", str(log_path))
    assert code == 0
    assert "clean" in out


def test_missing_comm_log_is_an_analysis_error(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    code, out = run_cli(str(good), "--comm-log", str(tmp_path / "nope.jsonl"))
    assert code == 2


# -- --select partitioning ---------------------------------------------------

def test_select_static_rule_skips_linting(tmp_path):
    # PIC002 violation present, but only COMM008 selected
    src = tmp_path / "mod.py"
    src.write_text(
        "import numpy as np\n"
        "a = np.zeros(3)\n"
        "def f(comm, p):\n"
        "    comm.recv(0, 1, tag='t')\n"
        "    comm.send(0, 1, p, tag='t')\n"
    )
    code, out = run_cli(str(src), "--select", "COMM008")
    assert code == 1
    assert "COMM008" in out and "PIC002" not in out


def test_select_lint_rule_skips_commstatic(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text(
        "import numpy as np\n"
        "a = np.zeros(3)\n"
        "def f(comm, p):\n"
        "    comm.send(0, 1, p, tag='orphan')\n"
    )
    code, out = run_cli(str(src), "--select", "PIC002")
    assert code == 1
    assert "PIC002" in out and "COMM006" not in out


def test_select_accepts_comma_lists(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text(
        "import numpy as np\n"
        "a = np.zeros(3)\n"
        "def f(comm, p):\n"
        "    comm.send(0, 1, p, tag='orphan')\n"
    )
    code, out = run_cli(str(src), "--select", "PIC002,COMM006")
    assert code == 1
    assert "PIC002" in out and "COMM006" in out


def test_select_unknown_rule_exits_2(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("x = 1\n")
    code, out = run_cli(str(src), "--select", "NOPE999")
    assert code == 2
    assert "NOPE999" in out


def test_no_commstatic_flag_disables_schedule_checks():
    code, out = run_cli(
        os.path.join(FIXTURES, "deadlock_schedule.py"), "--no-commstatic"
    )
    assert code == 0
    assert "clean" in out


# -- --list-rules covers every tier ------------------------------------------

def test_list_rules_names_static_and_replay_rules():
    code, out = run_cli("--list-rules")
    assert code == 0
    for rule_id in ("PIC002", "COMM006", "COMM007", "COMM008", "COMM009",
                    "COMM010", "RES001", "SAN004"):
        assert rule_id in out
    assert "[static]" in out and "[replay]" in out
