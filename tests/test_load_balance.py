"""Tests for the load-balancing strategies (paper Sec. V.C)."""

import numpy as np
import pytest

from repro.core.costs import CostModel
from repro.core.load_balance import (
    distribute_knapsack,
    distribute_round_robin,
    distribute_sfc,
    load_imbalance,
    rank_loads,
    should_rebalance,
)
from repro.exceptions import DecompositionError
from repro.parallel.box import chop_domain
from repro.parallel.distribution import DistributionMapping


def test_round_robin_pattern():
    ranks = distribute_round_robin(np.ones(7), 3)
    np.testing.assert_array_equal(ranks, [0, 1, 2, 0, 1, 2, 0])


def test_knapsack_balances_skewed_costs():
    """One heavy box plus many light ones: knapsack packs lights together."""
    costs = np.array([100.0] + [1.0] * 99)
    assignment = distribute_knapsack(costs, 2)
    loads = rank_loads(costs, assignment, 2)
    assert loads.max() / loads.mean() < 1.05
    # round robin on the same costs is terrible
    rr = distribute_round_robin(costs, 2)
    assert load_imbalance(costs, rr, 2) > 1.4


def test_knapsack_beats_sfc_on_imbalanced_input():
    rng = np.random.default_rng(11)
    costs = rng.pareto(1.0, size=64) + 0.1
    centers = rng.integers(0, 16, size=(64, 2))
    imb_ks = load_imbalance(costs, distribute_knapsack(costs, 8), 8)
    imb_sfc = load_imbalance(costs, distribute_sfc(costs, 8, centers), 8)
    assert imb_ks <= imb_sfc + 1e-9


def test_sfc_contiguity_on_uniform_costs():
    """Uniform costs: the SFC split assigns contiguous Morton segments."""
    boxes = chop_domain((16, 16), 4)  # 4x4 boxes
    centers = np.array([b.center() for b in boxes])
    costs = np.ones(len(boxes))
    assignment = distribute_sfc(costs, 4, centers)
    loads = rank_loads(costs, assignment, 4)
    np.testing.assert_allclose(loads, 4.0)
    # Morton-sorted traversal visits each rank exactly once (contiguous)
    from repro.particles.sorting import morton_encode

    codes = morton_encode(
        [centers[:, 0].astype(np.int64), centers[:, 1].astype(np.int64)]
    )
    order = np.argsort(codes)
    changes = np.count_nonzero(np.diff(assignment[order]))
    assert changes == 3


def test_sfc_without_centers_uses_given_order():
    costs = np.ones(8)
    assignment = distribute_sfc(costs, 2)
    np.testing.assert_array_equal(assignment, [0, 0, 0, 0, 1, 1, 1, 1])


def test_all_strategies_use_every_rank():
    costs = np.ones(16)
    for strat in (distribute_round_robin, distribute_knapsack):
        assert set(strat(costs, 4)) == {0, 1, 2, 3}
    assert set(distribute_sfc(costs, 4)) == {0, 1, 2, 3}


def test_validation_errors():
    with pytest.raises(DecompositionError):
        distribute_round_robin(np.ones(4), 0)
    with pytest.raises(DecompositionError):
        distribute_knapsack(np.array([-1.0]), 2)
    with pytest.raises(DecompositionError):
        distribute_sfc(np.array([]), 2)


def test_load_imbalance_bounds():
    costs = np.ones(8)
    perfect = distribute_round_robin(costs, 4)
    assert load_imbalance(costs, perfect, 4) == pytest.approx(1.0)
    all_on_one = np.zeros(8, dtype=np.intp)
    assert load_imbalance(costs, all_on_one, 4) == pytest.approx(4.0)
    assert load_imbalance(np.zeros(4), perfect[:4], 4) == 1.0


def test_should_rebalance_threshold():
    assert should_rebalance(1.2, threshold=1.1)
    assert not should_rebalance(1.05, threshold=1.1)


def test_distribution_mapping_rebalance_counts_moves():
    boxes = chop_domain((16, 16), 4)
    dm = DistributionMapping(boxes, 4, strategy="knapsack")
    # skew the costs heavily toward the first boxes
    costs = np.ones(len(boxes))
    costs[:4] = 50.0
    moved = dm.rebalance(costs)
    assert moved >= 0
    assert dm.imbalance(costs) < 1.5


def test_distribution_mapping_validation():
    boxes = chop_domain((8, 8), 4)
    with pytest.raises(DecompositionError):
        DistributionMapping(boxes, 2, strategy="random")
    with pytest.raises(DecompositionError):
        DistributionMapping(boxes, 0)
    with pytest.raises(DecompositionError):
        DistributionMapping(boxes, 2, costs=[1.0])


def test_distribution_mapping_boxes_of():
    boxes = chop_domain((8, 8), 4)
    dm = DistributionMapping(boxes, 2, strategy="round_robin")
    assert sorted(dm.boxes_of(0) + dm.boxes_of(1)) == list(range(4))
    assert dm.rank_of(0) == 0


def test_cost_model_heuristic_weights():
    cm = CostModel(alpha=0.1, beta=0.9)
    costs = cm.heuristic([100, 100], [0, 100])
    assert costs[0] == pytest.approx(10.0)
    assert costs[1] == pytest.approx(100.0)


def test_cost_model_measured_ema():
    cm = CostModel(smoothing=0.5)
    cm.record_measured(0, 1.0)
    cm.record_measured(0, 2.0)
    assert cm.measured([0])[0] == pytest.approx(1.5)
    assert cm.measured([1], default=7.0)[0] == 7.0


def test_cost_model_combined():
    cm = CostModel()
    cm.record_measured(1, 5.0)
    out = cm.combined([0, 1], [10, 10], [0, 0])
    assert out[0] == pytest.approx(1.0)  # heuristic
    assert out[1] == pytest.approx(5.0)  # measured wins


# -- dead-rank exclusion and accounting regressions --------------------------


def test_strategies_never_assign_to_excluded_ranks():
    """Regression: a dead rank must not be resurrected by any strategy."""
    costs = np.ones(12)
    dead = {1, 3}
    rr = distribute_round_robin(costs, 4, exclude_ranks=dead)
    ks = distribute_knapsack(costs, 4, exclude_ranks=dead)
    sfc = distribute_sfc(costs, 4, exclude_ranks=dead)
    for assignment in (rr, ks, sfc):
        assert set(assignment) == {0, 2}
    # balanced over the survivors
    assert load_imbalance(costs, ks, 4, exclude_ranks=dead) == pytest.approx(1.0)


def test_exclude_all_ranks_raises():
    with pytest.raises(DecompositionError):
        distribute_knapsack(np.ones(4), 2, exclude_ranks={0, 1})


def test_rebalance_respects_excluded_ranks():
    boxes = chop_domain((16, 16), 4)
    dm = DistributionMapping(boxes, 4, strategy="knapsack")
    costs = np.ones(len(boxes))
    costs[:4] = 50.0
    dm.rebalance(costs, exclude_ranks={2})
    assert 2 not in set(dm.assignment)
    assert dm.imbalance(costs, exclude_ranks={2}) < 1.5


def test_load_imbalance_averages_over_alive_ranks_only():
    """Regression: an excluded (dead) rank's zero load must not deflate
    the mean.  6 unit boxes on ranks {0,2,3} of 4: with rank 1 dead the
    survivors are perfectly balanced."""
    costs = np.ones(6)
    assignment = np.array([0, 0, 2, 2, 3, 3])
    # the buggy all-ranks average reported 2 / 1.5 = 1.333...
    assert load_imbalance(costs, assignment, 4) == pytest.approx(4.0 / 3.0)
    assert load_imbalance(
        costs, assignment, 4, exclude_ranks={1}
    ) == pytest.approx(1.0)


def test_sfc_order_resolves_half_integer_centers():
    """Regression: box centers sit on half-integers; truncating them to
    int aliased distinct boxes to the same Morton cell.  With doubled
    integer coordinates (2, 3) vs (3, 2) the codes differ and the
    y-major Morton convention orders the second box first."""
    from repro.core.load_balance import sfc_order

    centers = np.array([[1.0, 1.5], [1.5, 1.0]])
    np.testing.assert_array_equal(sfc_order(centers), [1, 0])


def test_distribute_sfc_splits_aliased_centers():
    """With the truncation bug both odd-sized boxes collapsed onto one
    Morton cell, so the stable sort degenerated to input order; the
    doubled-coordinate encoding keeps the curve meaningful."""
    boxes = chop_domain((6, 6), 3)  # 2x2 boxes of 3x3 cells: centers *.5
    centers = np.array([b.center() for b in boxes])
    assert np.all(centers % 1.0 == 0.5)  # precondition: all half-integer
    costs = np.ones(len(boxes))
    assignment = distribute_sfc(costs, 2, centers)
    loads = rank_loads(costs, assignment, 2)
    np.testing.assert_allclose(loads, 2.0)
    from repro.core.load_balance import sfc_order

    order = sfc_order(centers)
    # the Morton traversal of a 2x2 block is a bent elbow, never a scan
    assert list(order) != [0, 1, 2, 3]
    changes = np.count_nonzero(np.diff(assignment[order]))
    assert changes == 1


# -- cross-transport parity (see tests/conftest.py) --------------------------

from tests.conftest import (  # noqa: E402
    assert_runs_equal,
    make_skewed_lb_build,
)


def test_dynamic_lb_cross_transport(transport_runner):
    """The dynamic load balancer is transport-invariant: heuristic costs
    flow through a real allreduce on the multiprocessing backend, every
    rank computes the identical rebalanced assignment, and migrated box
    state matches loopback bit for bit."""
    from repro.parallel.mp_transport import run_distributed_local

    build = make_skewed_lb_build()
    want = run_distributed_local(build, 6)
    assert any(m > 0 for m in want.lb_events)  # scenario sanity: LB fired
    got = transport_runner(build, 6)
    assert got.lb_events == want.lb_events
    assert got.lb_moved_bytes == want.lb_moved_bytes
    assert_runs_equal(got, want)
