"""Unit coverage for the timer substrate: accumulation, stopwatches,
per-step lap history, merge/reset, and report formatting."""

import re
import time

import pytest

from repro.diagnostics.timers import Stopwatch, Timers, now


def test_now_is_monotonic_float():
    a = now()
    b = now()
    assert isinstance(a, float)
    assert b >= a


def test_timer_accumulates_and_counts():
    t = Timers()
    for _ in range(3):
        with t.timer("gather"):
            pass
    assert t.counts["gather"] == 3
    assert t.totals["gather"] >= 0.0


def test_add_records_external_duration():
    t = Timers()
    t.add("maxwell", 0.5)
    t.add("maxwell", 0.25)
    assert t.totals["maxwell"] == pytest.approx(0.75)
    assert t.counts["maxwell"] == 2
    assert t.total() == pytest.approx(0.75)


def test_stopwatch_fills_elapsed():
    t = Timers()
    with t.stopwatch() as sw:
        assert isinstance(sw, Stopwatch)
        assert sw.elapsed == 0.0  # not measured until exit
        time.sleep(0.001)
    assert sw.elapsed > 0.0
    # unnamed stopwatches do not touch the named accumulators
    assert t.totals == {}


def test_stopwatch_with_name_also_accumulates():
    t = Timers()
    with t.stopwatch("box") as sw:
        pass
    assert t.totals["box"] == pytest.approx(sw.elapsed)
    assert t.counts["box"] == 1


def test_lap_builds_step_history():
    t = Timers()
    t.reset_lap()
    first = t.lap()
    second = t.lap()
    assert t.step_times == [first, second]
    assert first >= 0.0 and second >= 0.0


def test_reset_clears_everything():
    t = Timers()
    t.add("push", 1.0)
    t.lap()
    t.reset()
    assert t.totals == {}
    assert t.counts == {}
    assert t.step_times == []
    assert t.total() == 0.0


def test_merge_adds_totals_and_concatenates_laps():
    a = Timers()
    a.add("gather", 1.0)
    a.add("push", 2.0)
    a.step_times.extend([0.1, 0.2])
    b = Timers()
    b.add("push", 3.0)
    b.add("deposit", 4.0)
    b.add("deposit", 1.0)
    b.step_times.append(0.3)

    a.merge(b)
    assert a.totals["gather"] == pytest.approx(1.0)
    assert a.totals["push"] == pytest.approx(5.0)
    assert a.totals["deposit"] == pytest.approx(5.0)
    assert a.counts == {"gather": 1, "push": 2, "deposit": 2}
    assert a.step_times == [0.1, 0.2, 0.3]
    # the merged-from timers are untouched
    assert b.totals["push"] == pytest.approx(3.0)


def test_report_alignment_with_long_names():
    t = Timers()
    long_name = "a_very_long_phase_name_over_24_characters"
    t.add(long_name, 2.0)
    t.add("short", 1.0)
    lines = t.report().splitlines()
    assert lines[0] == "timer breakdown:"
    width = len(long_name)
    # every row pads the name to the longest name's width
    for line in lines[1:]:
        assert line[2 : 2 + width].rstrip() in (long_name, "short")
        assert re.match(r"^ +[\d.]+s +[\d.]+% +\(\d+ calls\)$", line[2 + width :])


def test_report_sorted_by_total_and_shares_sum():
    t = Timers()
    t.add("minor", 1.0)
    t.add("major", 3.0)
    lines = t.report().splitlines()[1:]
    assert "major" in lines[0] and "minor" in lines[1]
    shares = [float(re.search(r"([\d.]+)%", l).group(1)) for l in lines]
    assert sum(shares) == pytest.approx(100.0, abs=0.2)


def test_report_empty_timers():
    assert Timers().report() == "timer breakdown:"
