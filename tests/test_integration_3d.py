"""3D integration tests (small grids — the paper's production dimensionality)."""

import numpy as np
import pytest

from repro.constants import c, m_e, plasma_frequency, plasma_wavelength, q_e, um, fs
from repro.core.mr_simulation import MRSimulation
from repro.core.simulation import Simulation
from repro.grid.maxwell import cfl_dt
from repro.grid.yee import YeeGrid
from repro.laser.antenna import LaserAntenna
from repro.laser.profiles import GaussianLaser
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def test_3d_langmuir_oscillation():
    """The canonical validation in full 3D."""
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((16, 8, 8), (0.0,) * 3, (length, length / 2, length / 2), guards=4)
    sim = Simulation(g, shape_order=2, smoothing_passes=0)
    e = Species("e", charge=-q_e, mass=m_e, ndim=3)
    sim.add_species(e, profile=UniformProfile(n0), ppc=1)
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    steps = 200
    hist = np.empty(steps)
    for i in range(steps):
        sim.step()
        hist[i] = g.fields["Ex"][g.guards + 4, g.guards + 4, g.guards + 4]
    spec = np.abs(np.fft.rfft(hist - hist.mean()))
    freqs = np.fft.rfftfreq(steps, d=sim.dt) * 2 * np.pi
    omega = freqs[np.argmax(spec)]
    assert omega == pytest.approx(plasma_frequency(n0), rel=0.15)


def test_3d_energy_finite_and_bounded():
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((8, 8, 8), (0.0,) * 3, (length,) * 3, guards=4)
    sim = Simulation(g, shape_order=2, smoothing_passes=1)
    e = Species("e", ndim=3)
    sim.add_species(e, profile=UniformProfile(n0), ppc=1,
                    temperature_uth=0.01, rng=np.random.default_rng(0))
    ke0 = e.kinetic_energy()
    sim.step(50)
    assert np.all(np.isfinite(g.fields["Ex"]))
    assert e.kinetic_energy() < 2.0 * ke0


def test_3d_laser_antenna():
    """Normal-incidence 3D injection produces a focused transverse profile.

    A 2-um carrier keeps the wavelength resolved (8 cells) on a grid small
    enough for a test."""
    g = YeeGrid((48, 24, 24), (0, -6 * um, -6 * um), (12 * um, 6 * um, 6 * um),
                guards=4)
    sim = Simulation(g, boundaries="damped", n_absorber=6)
    laser = GaussianLaser(2.0 * um, a0=1.0, waist=3 * um, duration=8 * fs,
                          t_peak=16 * fs)
    sim.add_laser(LaserAntenna(laser, position=1 * um, center=(0.0, 0.0)))
    sim.run_until(laser.t_peak + 5 * um / c)
    ey = sim.grid.interior_view("Ey")
    assert np.abs(ey).max() > 0.3 * laser.e_peak
    # intensity is centered on the axis
    i_peak = np.unravel_index(np.argmax(np.abs(ey)), ey.shape)
    assert abs(i_peak[1] - ey.shape[1] // 2) <= 3
    assert abs(i_peak[2] - ey.shape[2] // 2) <= 3


def test_3d_mr_patch_runs():
    """A 3D refinement patch: construction, substitution, stability."""
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((12, 12, 12), (0.0,) * 3, (length,) * 3, guards=4)
    dt = cfl_dt(tuple(d / 2 for d in g.dx), 0.9)
    sim = MRSimulation(g, dt=dt, shape_order=2, smoothing_passes=0)
    e = Species("e", ndim=3)
    sim.add_species(e, profile=UniformProfile(n0), ppc=1,
                    temperature_uth=0.005, rng=np.random.default_rng(1))
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    patch = sim.add_patch((3, 3, 3), (9, 9, 9), ratio=2)
    assert patch.fine.n_cells == (12, 12, 12)
    sim.step(25)
    assert np.all(np.isfinite(g.fields["Ex"]))
    assert np.all(np.isfinite(patch.fine.fields["Ex"]))
    assert np.all(np.isfinite(patch.aux.fields["Ex"]))
    assert e.gamma().max() < 1.1  # no spurious heating


def test_3d_mr_matches_no_mr():
    """The 3D MR run tracks the single-level run (the Fig. 7 validation
    structure, in miniature)."""
    def build(with_patch):
        n0 = 1e24
        length = plasma_wavelength(n0)
        g = YeeGrid((12, 6, 6), (0.0,) * 3, (length, length / 2, length / 2),
                    guards=4)
        dt = cfl_dt(tuple(d / 2 for d in g.dx), 0.9)
        sim = MRSimulation(g, dt=dt, shape_order=2, smoothing_passes=0)
        e = Species("e", ndim=3)
        sim.add_species(e, profile=UniformProfile(n0), ppc=1)
        k = 2 * np.pi / length
        e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
        if with_patch:
            sim.add_patch((3, 1, 1), (9, 5, 5), ratio=2)
        return sim

    sim_mr = build(True)
    sim_ref = build(False)
    for _ in range(40):
        sim_mr.step()
        sim_ref.step()
    ex_mr = sim_mr.grid.interior_view("Ex")
    ex_ref = sim_ref.grid.interior_view("Ex")
    scale = np.max(np.abs(ex_ref))
    assert scale > 0
    assert np.max(np.abs(ex_mr - ex_ref)) < 0.15 * scale
