"""Distributed PSATD: local-FFT boxes vs the monolithic spectral solve.

The contract differs from the FDTD substrate test: a local-FFT spectral
box is *not* bit-identical to the monolithic FFT — the analytic
propagator has tails beyond any finite guard region — so the
decomposed run matches the monolithic one within a guard-width-dependent
tolerance that shrinks monotonically as guards deepen (the documented
contract; see DESIGN.md and ``benchmarks/check_psatd_distributed.py``).
Across *transports* the computation is identical arithmetic, so
loopback and multiprocessing runs are compared bit-exactly.
"""

import numpy as np
import pytest

from repro.constants import c
from repro.exceptions import ConfigurationError
from repro.grid.psatd import PSATDMaxwellSolver
from repro.parallel.distributed import DistributedSimulation
from repro.scenarios.boosted_lwfa import (
    BoostedLWFASetup,
    build_monolithic,
    make_distributed_build,
)

from tests.conftest import assert_runs_equal

#: small-but-physical boosted LWFA used by every test here
SETUP = BoostedLWFASetup(n_cells=64, ppc=2)

#: documented guard-width-dependent tolerance of the 30-step scenario:
#: max relative field error and relative kinetic-energy error per depth
GUARD_TOLERANCES = {6: (3e-2, 2e-2), 12: (8e-3, 3e-3)}


def run_pair(guards, n_steps=30):
    mono, electrons = build_monolithic(SETUP, guards=max(4, guards))
    dist = make_distributed_build(
        SETUP, n_ranks=2, max_grid_size=16, psatd_guards=guards
    )()
    assert dist.total_particles() == electrons.n
    mono.step(n_steps)
    dist.step(n_steps)
    errs = {}
    for comp in ("Ex", "Ey", "Bz"):
        got = dist.global_field_view(comp)
        want = mono.grid.interior_view(comp)
        errs[comp] = np.max(np.abs(got - want)) / np.max(np.abs(want))
    ke_mono = electrons.kinetic_energy()
    ke_dist = dist.species["electrons"].gather_all().kinetic_energy()
    ke_err = abs(ke_dist - ke_mono) / ke_mono
    return errs, ke_err


def test_distributed_matches_monolithic_within_guard_tolerance():
    """The acceptance run: decomposed Galilean-PSATD boosted LWFA on two
    ranks tracks the monolithic solve, with the error shrinking as the
    guard region deepens."""
    results = {g: run_pair(g) for g in sorted(GUARD_TOLERANCES)}
    for guards, (field_tol, ke_tol) in GUARD_TOLERANCES.items():
        errs, ke_err = results[guards]
        for comp, err in errs.items():
            assert err < field_tol, (guards, comp, err)
        assert ke_err < ke_tol, (guards, ke_err)
    # deeper guards -> strictly better fields (the solver property that
    # justifies guard width as a solver-declared, not grid, constant)
    shallow, deep = results[6][0], results[12][0]
    for comp in shallow:
        assert deep[comp] < shallow[comp], comp


def test_psatd_cross_transport_bitwise(transport_runner):
    """Loopback and multiprocessing transports perform identical local
    arithmetic, so the decomposed spectral run is bit-identical across
    them — fields, particles, counters, halo totals and all."""
    build = make_distributed_build(
        SETUP, n_ranks=2, max_grid_size=32, psatd_guards=6
    )
    got = transport_runner(build, n_steps=6, n_ranks=2)
    from repro.parallel.mp_transport import run_distributed_local

    want = run_distributed_local(build, 6)
    assert_runs_equal(got, want)


def test_guard_width_is_a_solver_property():
    """Boxes are padded to the solver's declared guard depth: the
    effective guards are max(user guards, solver guards)."""
    build = make_distributed_build(SETUP, n_ranks=2, max_grid_size=16)
    sim = build()
    assert sim.domain.guards == PSATDMaxwellSolver.guard_cells
    assert all(
        bg.guards == PSATDMaxwellSolver.guard_cells for bg in sim.box_grids
    )
    # and every per-box solver runs the full-array local-FFT mode
    assert all(s.region == "full" for s in sim.box_solvers)
    # an explicit psatd_guards override wins over the class default
    sim = make_distributed_build(
        SETUP, n_ranks=2, max_grid_size=16, psatd_guards=8
    )()
    assert sim.domain.guards == 8


def test_psatd_box_extent_validation():
    """A PSATD box plus its guards must not span more than one period:
    the periodic-image overlap enumeration (and the physics) breaks."""
    with pytest.raises(ConfigurationError, match="more than one period"):
        DistributedSimulation(
            (32,), (0.0,), (SETUP.length,), n_ranks=2, max_grid_size=16,
            maxwell_solver="psatd", psatd_guards=12,
        )


def test_psatd_params_rejected_for_fdtd():
    kwargs = dict(
        n_cells=(32,), lo=(0.0,), hi=(SETUP.length,), n_ranks=2,
        max_grid_size=16,
    )
    with pytest.raises(ConfigurationError, match="psatd"):
        DistributedSimulation(**kwargs, psatd_guards=12)
    with pytest.raises(ConfigurationError, match="psatd"):
        DistributedSimulation(**kwargs, v_galilean=(0.1 * c, 0.0, 0.0))
    with pytest.raises(ConfigurationError, match="unknown Maxwell solver"):
        DistributedSimulation(**kwargs, maxwell_solver="spectral")


def test_source_halo_phase_runs_for_spectral_solver():
    """The spectral push reads guard J, so a dedicated ``halo:sources``
    fill phase must run each step (and stay absent for FDTD)."""
    sim = make_distributed_build(
        SETUP, n_ranks=2, max_grid_size=16, psatd_guards=6
    )()
    sim.step(2)
    tags = {e.tag for e in sim.comm.log}
    assert "halo:sources" in tags

    fdtd = DistributedSimulation(
        (16, 16), (0.0, 0.0), (SETUP.length, SETUP.length), n_ranks=2,
        max_grid_size=8,
    )
    fdtd.step(2)
    assert "halo:sources" not in {e.tag for e in fdtd.comm.log}
