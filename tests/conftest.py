"""Shared fixtures: the cross-transport parity harness.

The ``transport_runner`` fixture parametrizes a scenario-level test over
every SimComm transport — the in-process loopback and the real
one-process-per-rank multiprocessing backend — so halo, redistribution
and load-balance suites exercise both wire paths from a single test
body.  ``golden_langmuir`` caches the loopback reference run per
scenario so each parametrization compares against one shared baseline,
and :func:`assert_runs_equal` is the bit-identical comparison both the
parametrized suites and the differential matrix in
``tests/test_transport_matrix.py`` apply.
"""

import numpy as np
import pytest

from repro.constants import m_e, plasma_wavelength, q_e
from repro.parallel.distributed import DistributedSimulation
from repro.parallel.mp_transport import (
    run_distributed_local,
    run_distributed_mp,
)
from repro.particles.injection import UniformProfile
from repro.particles.species import Species

#: every transport the differential matrix runs over
TRANSPORTS = ("loopback", "multiprocessing")

#: ranks used by the cross-transport scenarios (one process per rank on
#: the multiprocessing side — keep it small enough for CI machines)
PARITY_RANKS = 4


def make_langmuir_build(
    n_ranks=PARITY_RANKS,
    n_cells=16,
    max_grid_size=8,
    ppc=(2, 2),
    u0=1e-3,
    uy=0.0,
    smoothing_passes=1,
    **sim_kwargs,
):
    """A build callable for the golden parity scenario.

    A Langmuir-oscillating plasma slab sized like the paper's LWFA
    plasma (one plasma wavelength per side, periodic), decomposed into
    one box per rank — every communication phase of a production step
    (fold, guard fill, particle redistribution, optionally dynamic LB)
    is exercised.  Pure function of its arguments: every SPMD worker
    calling it builds the identical simulation.
    """
    n0 = 1e24
    length = plasma_wavelength(n0)

    def build(transport=None):
        sim = DistributedSimulation(
            (n_cells,) * 2,
            (0.0, 0.0),
            (length, length),
            n_ranks=n_ranks,
            max_grid_size=max_grid_size,
            cfl=0.9,
            shape_order=2,
            smoothing_passes=smoothing_passes,
            transport=transport,
            **sim_kwargs,
        )
        e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
        k = 2 * np.pi / length

        def perturb(sp):
            sp.momenta[:, 0] = u0 * np.sin(k * sp.positions[:, 0])
            # optional uniform transverse drift: pushes particles across
            # box (and hence rank) boundaries, forcing redistribution
            if uy:
                sp.momenta[:, 1] = uy

        sim.add_species(
            e, profile=UniformProfile(n0), ppc=ppc, momentum_init=perturb
        )
        return sim

    return build


def make_skewed_lb_build(
    n_ranks=PARITY_RANKS,
    n_cells=16,
    max_grid_size=4,
    lb_interval=2,
    lb_threshold=1.05,
):
    """A dynamic-LB parity scenario: plasma in the left half only.

    16 boxes over 4 ranks with all particles on one side forces the
    heuristic-cost balancer to migrate boxes — exercising the allreduce
    collective and the ``lb:migrate`` state shipment on every transport.
    (``lb_cost_source='heuristic'`` because measured per-rank timings
    are not reproducible across transports.)
    """
    from repro.particles.injection import SlabProfile

    n0 = 1e24
    length = plasma_wavelength(n0)

    def build(transport=None):
        sim = DistributedSimulation(
            (n_cells,) * 2,
            (0.0, 0.0),
            (length, length),
            n_ranks=n_ranks,
            max_grid_size=max_grid_size,
            cfl=0.9,
            shape_order=2,
            smoothing_passes=0,
            strategy="sfc",
            dynamic_lb=True,
            lb_interval=lb_interval,
            lb_threshold=lb_threshold,
            lb_cost_source="heuristic",
            transport=transport,
        )
        e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
        sim.add_species(
            e, profile=SlabProfile(n0, 0.0, length / 2), ppc=(2, 2)
        )
        return sim

    return build


def assert_runs_equal(got, want, particles_exact=True):
    """Bit-identical comparison of two normalized run results.

    Fields compare elementwise-exact per box; particles compare exact
    per box after sorting by particle id (container order may differ
    when recovery reorders arrivals — set ``particles_exact=False`` to
    keep the id-sort but that is the only slack ever granted); the
    merged communication counters, halo totals, LB history and final
    box-to-rank assignment must match exactly.
    """
    assert set(got.fields) == set(want.fields)
    for i, comps in want.fields.items():
        assert set(got.fields[i]) == set(comps)
        for comp, arr in comps.items():
            assert np.array_equal(got.fields[i][comp], arr), (
                f"field {comp} of box {i} differs"
            )
    assert set(got.species) == set(want.species)
    for name, per_box in want.species.items():
        assert set(got.species[name]) == set(per_box)
        for i, arrs in per_box.items():
            g = got.species[name][i]
            og = np.argsort(g["ids"], kind="stable")
            ow = np.argsort(arrs["ids"], kind="stable")
            assert np.array_equal(g["ids"][og], arrs["ids"][ow]), (
                f"particle ids in box {i} differ"
            )
            for key in ("positions", "momenta", "weights"):
                same = np.array_equal(g[key][og], arrs[key][ow])
                if particles_exact:
                    assert same, f"particle {key} in box {i} differ"
                elif not same:
                    np.testing.assert_allclose(
                        g[key][og], arrs[key][ow], rtol=0, atol=0
                    )
    assert np.array_equal(got.assignment, want.assignment)
    assert np.array_equal(got.counters.bytes_sent, want.counters.bytes_sent)
    assert np.array_equal(
        got.counters.messages_sent, want.counters.messages_sent
    )
    assert got.counters.pair_bytes == want.counters.pair_bytes
    assert got.counters.collective_calls == want.counters.collective_calls
    assert got.counters.barrier_calls == want.counters.barrier_calls
    assert got.halo == want.halo
    assert got.lb_events == want.lb_events
    assert got.lb_moved_bytes == want.lb_moved_bytes


@pytest.fixture(params=TRANSPORTS)
def transport_runner(request):
    """Run a scenario on the transport this parametrization names.

    The returned callable takes ``(build, n_steps, n_ranks)`` and yields
    the normalized :class:`~repro.parallel.mp_transport.MPRunResult`;
    its ``kind`` attribute tells the test which transport it is on.
    """
    kind = request.param

    def run(build, n_steps, n_ranks=PARITY_RANKS, **kwargs):
        if kind == "loopback":
            kwargs.pop("run_timeout", None)
            return run_distributed_local(build, n_steps, **kwargs)
        return run_distributed_mp(build, n_steps, n_ranks, **kwargs)

    run.kind = kind
    return run


_GOLDEN_CACHE = {}


@pytest.fixture
def golden_langmuir():
    """Loopback reference runs of the parity scenario, cached per config.

    ``golden_langmuir(n_steps=..., **build_kwargs)`` computes the
    loopback run once per distinct configuration and reuses it across
    every transport parametrization that compares against it.
    """

    def get(n_steps=8, **build_kwargs):
        key = (n_steps, tuple(sorted(build_kwargs.items())))
        if key not in _GOLDEN_CACHE:
            _GOLDEN_CACHE[key] = run_distributed_local(
                make_langmuir_build(**build_kwargs), n_steps
            )
        return _GOLDEN_CACHE[key]

    return get
