"""Tests for the analytic kernel flop/byte counts."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.perfmodel.kernels import (
    CALIBRATION_WORKLOAD,
    KernelCounts,
    deposit_counts,
    gather_counts,
    maxwell_counts,
    mixed_precision_counts,
    pic_step_counts,
    push_counts,
    smoothing_counts,
)


def test_counts_arithmetic():
    a = KernelCounts(10.0, 20.0)
    b = KernelCounts(5.0, 5.0)
    s = a + b
    assert s.flops == 15.0 and s.bytes == 25.0
    assert a.scaled(2.0).flops == 20.0
    assert a.arithmetic_intensity == 0.5
    assert KernelCounts(1.0, 0.0).arithmetic_intensity == 0.0


@pytest.mark.parametrize("fn", [gather_counts, deposit_counts])
def test_counts_monotone_in_order(fn):
    for ndim in (1, 2, 3):
        flops = [fn(o, ndim).flops for o in (1, 2, 3)]
        assert flops[0] < flops[1] < flops[2]
        bytes_ = [fn(o, ndim).bytes for o in (1, 2, 3)]
        assert bytes_[0] < bytes_[1] < bytes_[2]


def test_counts_monotone_in_ndim():
    for order in (1, 2, 3):
        flops = [gather_counts(order, d).flops for d in (1, 2, 3)]
        assert flops[0] < flops[1] < flops[2]


def test_invalid_order_raises():
    with pytest.raises(ConfigurationError):
        gather_counts(5, 3)
    with pytest.raises(ConfigurationError):
        deposit_counts(1, 4)


def test_pic_step_scales_with_ppc():
    base = pic_step_counts(2, 3, ppc=0.0)
    one = pic_step_counts(2, 3, ppc=1.0)
    two = pic_step_counts(2, 3, ppc=2.0)
    # particle part is linear in ppc
    assert two.flops - one.flops == pytest.approx(one.flops - base.flops)
    assert base.flops == maxwell_counts(3).flops


def test_smoothing_scales_with_passes():
    one = smoothing_counts(2, 1)
    three = smoothing_counts(2, 3)
    assert three.flops == pytest.approx(3 * one.flops)


def test_calibration_workload_ai_memory_bound_regime():
    """The calibration AI must keep every machine memory-bound: it is
    ~1 Flop/byte, far below any machine's peak-flops/bandwidth ratio."""
    c = pic_step_counts(**CALIBRATION_WORKLOAD)
    assert 0.5 < c.arithmetic_intensity < 2.0


def test_mixed_precision_buckets():
    mp = mixed_precision_counts(2, 3, ppc=2.0)
    dp_mode = pic_step_counts(2, 3, ppc=2.0)
    total_mp_flops = mp["sp"].flops + mp["dp"].flops
    # the MP split re-partitions (approximately) the same work
    assert total_mp_flops == pytest.approx(dp_mode.flops, rel=0.2)
    # SP dominates the flops; SP bytes are cheaper than the DP-mode bytes
    assert mp["sp"].flops > mp["dp"].flops
    assert mp["sp"].bytes + mp["dp"].bytes < dp_mode.bytes


def test_push_counts_fixed():
    c = push_counts()
    assert c.flops == 62.0
    assert c.bytes == 18 * 8
