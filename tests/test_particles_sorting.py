"""Tests for Morton binning / particle sorting."""

import numpy as np

from repro.grid.yee import YeeGrid
from repro.particles.sorting import (
    binning_locality_score,
    morton_bin_particles,
    morton_encode,
    sort_species_by_bin,
)
from repro.particles.species import Species


def test_morton_encode_2d_known_values():
    x = np.array([0, 1, 0, 1, 2])
    y = np.array([0, 0, 1, 1, 2])
    codes = morton_encode([x, y])
    assert list(codes) == [0, 1, 2, 3, 12]


def test_morton_encode_3d_interleaving():
    codes = morton_encode(
        [np.array([1, 0, 0]), np.array([0, 1, 0]), np.array([0, 0, 1])]
    )
    assert list(codes) == [1, 2, 4]


def test_morton_encode_1d_is_identity():
    v = np.array([5, 2, 9])
    np.testing.assert_array_equal(morton_encode([v]), v)


def test_morton_preserves_locality():
    """Neighbouring tiles differ by small code deltas more often than a
    row-major ordering does at row wrap-arounds."""
    n = 16
    x, y = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    codes = morton_encode([x.ravel(), y.ravel()])
    assert len(np.unique(codes)) == n * n


def make_species_and_grid(n_part=500, seed=12):
    g = YeeGrid((16, 16), (0.0, 0.0), (16.0, 16.0), guards=2)
    s = Species("e", ndim=2)
    rng = np.random.default_rng(seed)
    s.add_particles(rng.uniform(0, 16, size=(n_part, 2)))
    return s, g


def test_sort_improves_locality():
    s, g = make_species_and_grid()
    before = binning_locality_score(s, g, tile_cells=4)
    sort_species_by_bin(s, g, tile_cells=4)
    after = binning_locality_score(s, g, tile_cells=4)
    assert after > before
    assert after > 0.9  # 500 particles over 16 tiles: mostly contiguous


def test_sort_is_a_permutation():
    s, g = make_species_and_grid(n_part=100)
    ids_before = set(s.ids)
    w_total = s.weights.sum()
    perm = sort_species_by_bin(s, g)
    assert sorted(perm) == list(range(100))
    assert set(s.ids) == ids_before
    assert s.weights.sum() == w_total


def test_bins_monotone_after_sort():
    s, g = make_species_and_grid(n_part=300)
    sort_species_by_bin(s, g, tile_cells=2)
    codes = morton_bin_particles(s, g, tile_cells=2)
    assert np.all(np.diff(codes.astype(np.int64)) >= 0)


# -- Morton interleave width regressions -------------------------------------

def test_morton_3d_wide_tile_indices_do_not_alias():
    """Regression: the 3D interleave used to mask each axis to 10 bits,
    silently aliasing tile index 1024 to 0 — particles a thousand tiles
    apart shared a bin on large grids."""
    z = np.zeros(4, dtype=np.int64)
    idx = np.array([0, 1024, 2048, (1 << 21) - 1])
    codes = morton_encode([idx, z, z])
    assert len(np.unique(codes)) == idx.size
    assert np.all(np.diff(codes.astype(object)) > 0)


def test_morton_2d_wide_tile_indices_do_not_alias():
    """Same regression in 2D, where the old masks kept 16 bits."""
    z = np.zeros(3, dtype=np.int64)
    idx = np.array([0, 1 << 16, (1 << 32) - 1])
    codes = morton_encode([idx, z])
    assert len(np.unique(codes)) == idx.size


def test_morton_overflow_raises_instead_of_aliasing():
    from repro.exceptions import ConfigurationError

    z = np.zeros(1, dtype=np.int64)
    with np.testing.assert_raises(ConfigurationError):
        morton_encode([np.array([1 << 21]), z, z])
    with np.testing.assert_raises(ConfigurationError):
        morton_encode([np.array([1 << 32]), z])
    with np.testing.assert_raises(ConfigurationError):
        morton_encode([np.array([-1]), z])
