"""Tests for the mesh-refinement patch: construction, substitution,
current restriction and wave transmission."""

import numpy as np
import pytest

from repro.constants import c, q_e
from repro.core.mr_level import MRPatch
from repro.exceptions import ConfigurationError, StabilityError
from repro.grid.boundary import apply_periodic
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.yee import YeeGrid


def make_parent(n=64, ndim=2, guards=4):
    return YeeGrid((n,) * ndim, (0.0,) * ndim, (float(n),) * ndim, guards=guards)


def fine_dt(parent, ratio=2, cfl=0.9):
    return cfl_dt(tuple(d / ratio for d in parent.dx), cfl)


def test_patch_geometry():
    parent = make_parent()
    dt = fine_dt(parent)
    p = MRPatch(parent, (16, 16), (48, 40), ratio=2, dt=dt)
    assert p.fine.n_cells == (64, 48)
    assert p.coarse.n_cells == (32, 24)
    assert p.lo == (16.0, 16.0)
    assert p.hi == (48.0, 40.0)
    np.testing.assert_allclose(p.fine.dx, (0.5, 0.5))


def test_patch_region_validation():
    parent = make_parent()
    dt = fine_dt(parent)
    with pytest.raises(ConfigurationError):
        MRPatch(parent, (16, 16), (16, 40), dt=dt)
    with pytest.raises(ConfigurationError):
        MRPatch(parent, (-1, 0), (8, 8), dt=dt)
    with pytest.raises(ConfigurationError):
        MRPatch(parent, (0, 0), (65, 8), dt=dt)
    with pytest.raises(ConfigurationError):
        MRPatch(parent, (0, 0), (8, 8), ratio=1, dt=dt)


def test_patch_cfl_guard():
    parent = make_parent()
    coarse_dt = cfl_dt(parent.dx, 0.95)
    with pytest.raises(StabilityError):
        MRPatch(parent, (16, 16), (32, 32), ratio=2, dt=coarse_dt, subcycle=False)
    # subcycling makes the same dt legal
    MRPatch(parent, (16, 16), (32, 32), ratio=2, dt=coarse_dt, subcycle=True)


def test_initial_aux_matches_interpolated_parent():
    parent = make_parent()
    # a smooth parent field
    x = np.arange(parent.shape[0])[:, None]
    y = np.arange(parent.shape[1])[None, :]
    parent.fields["Ey"][...] = np.sin(2 * np.pi * x / 32.0) * np.cos(
        2 * np.pi * y / 32.0
    )
    p = MRPatch(parent, (16, 16), (48, 48), ratio=2, dt=fine_dt(parent))
    aux = p.aux.interior_view("Ey")
    # at construction F(f) = I[F(s)] and F(c) = F(s), so a = I[F(s)]
    from repro.grid.interpolation import prolong, region_sample_counts
    from repro.grid.yee import STAGGER

    expected = prolong(
        p._parent_section("Ey"),
        2,
        STAGGER["Ey"],
        region_sample_counts(p.fine.n_cells, STAGGER["Ey"]),
    )
    np.testing.assert_allclose(aux, expected, atol=1e-12)


def test_contains_and_interior_mask():
    parent = make_parent()
    p = MRPatch(parent, (16, 16), (48, 48), ratio=2, dt=fine_dt(parent),
                n_transition=4)
    pos = np.array([[20.0, 20.0], [16.5, 20.0], [10.0, 20.0], [47.5, 47.5]])
    np.testing.assert_array_equal(p.contains(pos), [True, True, False, True])
    # transition zone: 4 fine cells = 2 m here
    np.testing.assert_array_equal(p.interior_mask(pos), [True, False, False, False])


def test_external_wave_enters_patch_through_substitution():
    """A plane wave launched outside the patch must appear in the auxiliary
    field with the right amplitude — the substitution transports external
    fields into the refined region."""
    parent = make_parent(n=96, ndim=1, guards=4)
    lam = 24.0  # 24 cells per wavelength: tiny dispersion error
    k = 2 * np.pi / lam
    x_e = parent.axis_coords(0, "Ey")
    x_b = parent.axis_coords(0, "Bz")
    envelope = lambda s: np.exp(-(((s - 24.0) / 8.0) ** 2))
    parent.interior_view("Ey")[...] = envelope(x_e) * np.sin(k * x_e)
    parent.interior_view("Bz")[...] = envelope(x_b) * np.sin(k * x_b) / c
    dt = fine_dt(parent, ratio=2, cfl=0.45)
    solver = MaxwellSolver(parent, dt)
    patch = MRPatch(parent, (48,), (80,), ratio=2, dt=dt)
    # propagate until the pulse is centered inside the patch
    steps = int(36.0 / (c * dt))
    for _ in range(steps):
        apply_periodic(parent, 0)
        solver.step()
        patch.advance_fields()
        patch.assemble_aux()
    aux_ey = patch.aux.interior_view("Ey")
    # compare against the parent solution interpolated onto the fine lattice
    from repro.grid.interpolation import prolong, region_sample_counts
    from repro.grid.yee import STAGGER

    expected = prolong(
        patch._parent_section("Ey"),
        2,
        STAGGER["Ey"],
        region_sample_counts(patch.fine.n_cells, STAGGER["Ey"]),
    )
    err = np.max(np.abs(aux_ey - expected)) / np.max(np.abs(expected))
    assert err < 0.05


def test_internal_current_restricted_to_parent_conserves_total():
    from repro.particles.deposit import deposit_current_esirkepov

    parent = make_parent(n=32, ndim=2)
    p = MRPatch(parent, (8, 8), (24, 24), ratio=2, dt=fine_dt(parent))
    pos0 = np.array([[16.0, 16.0]])
    pos1 = np.array([[16.3, 16.0]])
    vel = np.array([[0.3 / 1e-9, 0.0, 0.0]])
    w = np.array([2.0])
    deposit_current_esirkepov(p.fine, pos0, pos1, vel, w, q_e, 1e-9, order=2)
    fine_total = p.fine.fields["Jx"].sum() * float(np.prod(p.fine.dx))
    p.restrict_currents_to_parent()
    parent_total = parent.fields["Jx"].sum() * float(np.prod(parent.dx))
    coarse_total = p.coarse.fields["Jx"].sum() * float(np.prod(p.coarse.dx))
    assert fine_total == pytest.approx(q_e * 2.0 * 0.3 / 1e-9, rel=1e-12)
    assert parent_total == pytest.approx(fine_total, rel=1e-9)
    assert coarse_total == pytest.approx(fine_total, rel=1e-9)


def test_internal_wave_no_spurious_reflection():
    """A pulse radiated inside the patch leaves through the patch PML and
    propagates on the parent; almost nothing reflects back into the fine
    grid. This is the defining property of the Sec. V.B construction."""
    parent = make_parent(n=128, ndim=1, guards=4)
    dt = fine_dt(parent, ratio=2, cfl=0.45)
    solver = MaxwellSolver(parent, dt)
    patch = MRPatch(parent, (48,), (80,), ratio=2, dt=dt, n_pml=8)
    # seed an outgoing pulse *inside the fine grid only*, plus the restricted
    # counterparts on coarse+parent (as a real source would create)
    xf = patch.fine.axis_coords(0, "Ey")
    xb = patch.fine.axis_coords(0, "Bz")
    pulse = lambda s: np.exp(-(((s - 64.0) / 2.0) ** 2))
    patch.fine.interior_view("Ey")[...] = pulse(xf)
    patch.fine.interior_view("Bz")[...] = pulse(xb) / c
    from repro.grid.interpolation import restrict, region_sample_counts
    from repro.grid.yee import STAGGER

    for comp in ("Ey", "Bz"):
        counts = region_sample_counts(patch.coarse.n_cells, STAGGER[comp])
        coarse_vals = restrict(
            patch.fine.interior_view(comp), 2, STAGGER[comp], counts
        )
        patch.coarse.interior_view(comp)[...] = coarse_vals
        patch._parent_section(comp)[...] = coarse_vals
    # re-seed solvers so the PML split state carries the initial fields
    from repro.grid.pml import PMLMaxwellSolver

    patch.fine_solver = PMLMaxwellSolver(patch.fine, dt, n_pml=8)
    patch.coarse_solver = PMLMaxwellSolver(patch.coarse, dt, n_pml=8)

    e0 = patch.fine.field_energy()
    steps = int(40.0 / (c * dt))
    for _ in range(steps):
        apply_periodic(parent, 0)
        solver.step()
        patch.advance_fields()
        patch.assemble_aux()
    # the pulse (width 2, patch half-width 16) has fully left the fine grid
    assert patch.fine.field_energy() < 1e-3 * e0
    # and it is now travelling on the parent grid
    assert parent.field_energy() > 0.1 * e0


def test_shift_region_and_removal():
    parent = make_parent(n=32, ndim=1)
    dt = fine_dt(parent)
    p = MRPatch(parent, (4,), (12,), ratio=2, dt=dt, remove_time=5.0)
    p.shift_region(2)
    assert p.region_lo == [2] and p.region_hi == [10]
    assert not p.is_outside_parent()
    assert not p.should_remove(1.0)
    assert p.should_remove(5.0)
    p.shift_region(3)
    assert p.is_outside_parent()
    assert p.should_remove(0.0)
